//! Primal–dual interior-point LP solver for basis pursuit.
//!
//! The paper (Sec. 3.1) notes the L1 problem "can be re-formulated as a
//! linear programming problem and solved efficiently in the silicon
//! side". This module does exactly that: with the split `x = z⁺ − z⁻`,
//! basis pursuit becomes the standard-form LP
//!
//! ```text
//! min 1ᵀz   s.t.  [A, −A]·z = b,  z ≥ 0,
//! ```
//!
//! solved by a path-following primal–dual interior-point method whose
//! Newton systems reduce to `m x m` normal equations.

use crate::error::{Result, SolverError};
use crate::op::{check_measurements, LinearOperator};
use crate::report::{Recovery, SolveReport};
use crate::tel;
use flexcs_linalg::vecops;
use flexcs_linalg::{Cholesky, Matrix};

/// Configuration for [`lp_basis_pursuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpConfig {
    /// Iteration budget (interior-point iterations).
    pub max_iterations: usize,
    /// Duality-gap tolerance: stop when `μ = zᵀs / 2n` falls below this.
    pub gap_tol: f64,
    /// Infeasibility tolerance on primal/dual residual norms.
    pub feas_tol: f64,
    /// Centering parameter σ in (0, 1).
    pub sigma: f64,
}

impl Default for LpConfig {
    fn default() -> Self {
        LpConfig {
            max_iterations: 100,
            gap_tol: 1e-9,
            feas_tol: 1e-8,
            sigma: 0.2,
        }
    }
}

impl LpConfig {
    fn validate(&self) -> Result<()> {
        if self.max_iterations == 0 {
            return Err(SolverError::InvalidParameter(
                "max_iterations must be positive".to_string(),
            ));
        }
        if !(self.sigma > 0.0 && self.sigma < 1.0) {
            return Err(SolverError::InvalidParameter(format!(
                "sigma must lie in (0, 1), got {}",
                self.sigma
            )));
        }
        Ok(())
    }
}

/// Basis pursuit via a primal–dual interior-point LP.
///
/// # Errors
///
/// Returns [`SolverError::DimensionMismatch`] for a wrong-length `b`,
/// [`SolverError::InvalidParameter`] for a bad configuration, and
/// propagates normal-equation factorization failures (rank-deficient
/// measurement matrices).
///
/// # Examples
///
/// ```
/// use flexcs_linalg::Matrix;
/// use flexcs_solver::{lp_basis_pursuit, DenseOperator, LpConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0, 0.4, -0.1], &[0.3, 1.0, 0.6]])?;
/// let op = DenseOperator::new(a);
/// let b = [-2.0, -0.6]; // x = (-2, 0, 0)
/// let rec = lp_basis_pursuit(&op, &b, &LpConfig::default())?;
/// assert!((rec.x[0] + 2.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn lp_basis_pursuit(op: &dyn LinearOperator, b: &[f64], config: &LpConfig) -> Result<Recovery> {
    check_measurements(op, b)?;
    config.validate()?;
    let m = op.rows();
    let n = op.cols();
    let n2 = 2 * n;
    let b_norm = vecops::norm2(b);
    if b_norm == 0.0 {
        return Ok(Recovery::new(
            vec![0.0; n],
            SolveReport::new(0, 0.0, true, 0.0),
        ));
    }
    let a = op.to_dense();

    // Split-variable helpers: A_eq = [A, -A].
    let apply_aeq = |z: &[f64]| -> Vec<f64> {
        let diff: Vec<f64> = (0..n).map(|j| z[j] - z[n + j]).collect();
        a.matvec(&diff).expect("dims fixed")
    };
    let apply_aeq_t = |y: &[f64]| -> Vec<f64> {
        let aty = a.matvec_transpose(y).expect("dims fixed");
        let mut out = vec![0.0; n2];
        for j in 0..n {
            out[j] = aty[j];
            out[n + j] = -aty[j];
        }
        out
    };

    // Interior starting point.
    let mut z = vec![1.0; n2];
    let mut s = vec![1.0; n2];
    let mut y = vec![0.0; m];

    let mut iterations = 0;
    let mut converged = false;
    let mut mu = 1.0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        // Residuals.
        let aeq_z = apply_aeq(&z);
        let r_p = vecops::sub(b, &aeq_z);
        let aeqt_y = apply_aeq_t(&y);
        // r_d = c − A_eqᵀy − s with c = 1.
        let r_d: Vec<f64> = (0..n2).map(|i| 1.0 - aeqt_y[i] - s[i]).collect();
        mu = vecops::dot(&z, &s) / n2 as f64;
        let rp_norm = vecops::norm2(&r_p);
        let rd_norm = vecops::norm2(&r_d);
        if tel::enabled() {
            // objective = 1ᵀz (the LP cost), residual = worse of the
            // primal/dual infeasibilities, step = duality-gap measure μ.
            tel::iteration(
                "lp",
                iterations,
                z.iter().sum::<f64>(),
                rp_norm.max(rd_norm),
                mu,
            );
        }
        if mu < config.gap_tol
            && rp_norm < config.feas_tol * (1.0 + b_norm)
            && rd_norm < config.feas_tol * (n2 as f64).sqrt()
        {
            converged = true;
            break;
        }
        // Complementarity target: r_c = σμ·1 − ZS·1.
        let target = config.sigma * mu;
        // Scaling D = Z S⁻¹, split as d_plus/d_minus per original column.
        let d: Vec<f64> = (0..n2).map(|i| z[i] / s[i]).collect();
        // Normal matrix M = A (D⁺ + D⁻) Aᵀ.
        let dsum: Vec<f64> = (0..n).map(|j| d[j] + d[n + j]).collect();
        let mut normal = Matrix::zeros(m, m);
        for i in 0..m {
            let ri = a.row(i);
            for i2 in i..m {
                let r2 = a.row(i2);
                let mut acc = 0.0;
                for j in 0..n {
                    acc += ri[j] * dsum[j] * r2[j];
                }
                normal[(i, i2)] = acc;
                normal[(i2, i)] = acc;
            }
        }
        let lift = 1e-12 * (1.0 + normal.trace().unwrap_or(0.0) / m as f64);
        for i in 0..m {
            normal[(i, i)] += lift;
        }
        // rhs = r_p + A_eq D (r_d − Z⁻¹ r_c), r_c_i = target − z_i s_i.
        let mut v = vec![0.0; n2];
        for i in 0..n2 {
            let rc = target - z[i] * s[i];
            v[i] = d[i] * (r_d[i] - rc / z[i]);
        }
        let aeq_v = apply_aeq(&v);
        let rhs = vecops::add(&r_p, &aeq_v);
        let dy = Cholesky::factor(&normal)?.solve(&rhs)?;
        // Back-substitute.
        let aeqt_dy = apply_aeq_t(&dy);
        let mut dz = vec![0.0; n2];
        let mut ds = vec![0.0; n2];
        for i in 0..n2 {
            let rc = target - z[i] * s[i];
            dz[i] = d[i] * (aeqt_dy[i] + rc / z[i] - r_d[i]);
            ds[i] = (rc - s[i] * dz[i]) / z[i];
        }
        // Fraction-to-boundary step lengths.
        let mut alpha_p = 1.0_f64;
        let mut alpha_d = 1.0_f64;
        for i in 0..n2 {
            if dz[i] < 0.0 {
                alpha_p = alpha_p.min(-z[i] / dz[i]);
            }
            if ds[i] < 0.0 {
                alpha_d = alpha_d.min(-s[i] / ds[i]);
            }
        }
        alpha_p = (alpha_p * 0.995).min(1.0);
        alpha_d = (alpha_d * 0.995).min(1.0);
        for i in 0..n2 {
            z[i] += alpha_p * dz[i];
            s[i] += alpha_d * ds[i];
        }
        for (yi, dyi) in y.iter_mut().zip(&dy) {
            *yi += alpha_d * dyi;
        }
        if z.iter().chain(s.iter()).any(|v| !v.is_finite()) {
            return Err(SolverError::Diverged {
                iteration: iterations,
            });
        }
    }
    tel::solve_done("lp", iterations, converged);
    let x: Vec<f64> = (0..n).map(|j| z[j] - z[n + j]).collect();
    let ax = op.apply(&x);
    let residual = vecops::norm2(&vecops::sub(&ax, b));
    let _ = mu;
    Ok(Recovery::new(
        x.clone(),
        SolveReport::new(iterations, residual, converged, vecops::norm1(&x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{gaussian_operator, sparse_signal};

    #[test]
    fn recovers_sparse_signal_exactly() {
        let (m, n, k) = (40, 80, 4);
        let op = gaussian_operator(m, n, 91);
        let x_true = sparse_signal(n, k, 92);
        let b = op.apply(&x_true);
        let rec = lp_basis_pursuit(&op, &b, &LpConfig::default()).unwrap();
        let err = vecops::norm2(&vecops::sub(&rec.x, &x_true)) / vecops::norm2(&x_true);
        assert!(err < 1e-5, "relative error {err}");
        assert!(rec.report.converged);
    }

    #[test]
    fn solution_is_feasible() {
        let op = gaussian_operator(30, 70, 101);
        let x_true = sparse_signal(70, 5, 102);
        let b = op.apply(&x_true);
        let rec = lp_basis_pursuit(&op, &b, &LpConfig::default()).unwrap();
        assert!(rec.report.residual_norm < 1e-6 * vecops::norm2(&b));
    }

    #[test]
    fn objective_minimal() {
        let (m, n, k) = (25, 50, 3);
        let op = gaussian_operator(m, n, 111);
        let x_true = sparse_signal(n, k, 112);
        let b = op.apply(&x_true);
        let rec = lp_basis_pursuit(&op, &b, &LpConfig::default()).unwrap();
        // In the exact-recovery regime the L1 minimum is the true signal.
        assert!((rec.report.objective - vecops::norm1(&x_true)).abs() < 1e-5);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let op = gaussian_operator(10, 20, 121);
        let rec = lp_basis_pursuit(&op, &[0.0; 10], &LpConfig::default()).unwrap();
        assert!(rec.x.iter().all(|&v| v == 0.0));
        assert_eq!(rec.report.iterations, 0);
    }

    #[test]
    fn config_validation() {
        let op = gaussian_operator(5, 10, 131);
        let b = vec![1.0; 5];
        let mut cfg = LpConfig {
            sigma: 1.5,
            ..LpConfig::default()
        };
        assert!(lp_basis_pursuit(&op, &b, &cfg).is_err());
        cfg.sigma = 0.2;
        cfg.max_iterations = 0;
        assert!(lp_basis_pursuit(&op, &b, &cfg).is_err());
    }

    #[test]
    fn wrong_rhs_rejected() {
        let op = gaussian_operator(8, 16, 141);
        assert!(lp_basis_pursuit(&op, &[1.0; 7], &LpConfig::default()).is_err());
    }

    #[test]
    fn agrees_with_irls() {
        let (m, n, k) = (30, 60, 4);
        let op = gaussian_operator(m, n, 151);
        let x_true = sparse_signal(n, k, 152);
        let b = op.apply(&x_true);
        let r_lp = lp_basis_pursuit(&op, &b, &LpConfig::default()).unwrap();
        let r_irls = crate::irls(&op, &b, &crate::IrlsConfig::default()).unwrap();
        let diff = vecops::norm2(&vecops::sub(&r_lp.x, &r_irls.x));
        assert!(diff < 1e-3 * vecops::norm2(&x_true).max(1.0));
    }
}
