//! Orthonormal DCT-II / DCT-III (inverse) transforms, 1-D and 2-D.
//!
//! The paper expresses sensor frames in the 2-D DCT basis (Eqs. 3–7) and
//! reconstructs with the IDCT. [`DctPlan`] dispatches between two
//! kernels: an O(n log n) in-place Lee recursion for power-of-two
//! lengths (forward DCT-II and a matching exact inverse DCT-III) and a
//! precomputed dense cosine matrix for every other size. [`Dct2d`]
//! applies the 1-D plans separably and keeps per-plan scratch storage so
//! repeated frames do not reallocate.

use crate::error::{Result, TransformError};
use flexcs_linalg::{simd, Matrix};
use std::cell::RefCell;
use std::f64::consts::PI;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread 1-D fast-kernel workspace. Scratch used to live on
    /// the plan behind a `Mutex`; the block-tiled decode fan-out hammers
    /// one shared plan from every worker at once, and even a `try_lock`
    /// with an allocate-on-contention fallback turned the hot path into
    /// one allocation per transform. Thread-local scratch is contention-
    /// free and allocation-free once each worker's buffer is warm.
    static PLAN_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Per-thread 2-D frame workspace (transpose staging, multi-lane
    /// recursion scratch, dense-fallback strips), shared by every
    /// [`Dct2d`] the thread applies.
    static FRAME_SCRATCH: RefCell<Dct2dScratch> = RefCell::new(Dct2dScratch::default());
}

/// Which kernel a [`DctPlan`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DctKernel {
    /// O(n log n) Lee recursion (power-of-two lengths).
    Fast,
    /// Dense n x n cosine-matrix product (any length).
    Dense,
}

/// A precomputed orthonormal DCT-II plan for a fixed length.
///
/// The transform computed is `y_k = a_k · Σ_t x_t cos(π (2t + 1) k /
/// (2n))` with `a_0 = √(1/n)`, `a_k = √(2/n)`; the inverse is the
/// orthonormal DCT-III (the transpose, since the map is orthonormal).
/// Power-of-two lengths run the O(n log n) Lee recursion; other lengths
/// fall back to a dense cosine matrix. Both kernels agree to ~1e-12.
/// Fast-path scratch is thread-local, so one plan shared across many
/// worker threads transforms concurrently with no lock and no per-call
/// allocation.
///
/// # Examples
///
/// ```
/// use flexcs_transform::DctPlan;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = DctPlan::new(8)?;
/// let x = vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0];
/// let coeffs = plan.forward(&x)?;
/// let back = plan.inverse(&coeffs)?;
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    kernel: DctKernel,
    /// Dense n x n forward DCT-II matrix; eager for the dense kernel,
    /// built on demand (via [`DctPlan::matrix`]) for the fast kernel.
    dense: OnceLock<Matrix>,
    /// Twiddle factors per recursion level: `levels[l][i] =
    /// cos((i + 0.5)·π / m)` for `m = n >> l`. Empty for the dense kernel.
    levels: Vec<Vec<f64>>,
    /// Reciprocal twiddles `0.5 / levels[l][i]`, so the forward butterfly
    /// multiplies instead of divides (divides dominate the lane cost).
    inv_levels: Vec<Vec<f64>>,
    a0: f64,
    ak: f64,
    inv_a0: f64,
    inv_ak: f64,
}

fn cosine_matrix(n: usize) -> Matrix {
    let nf = n as f64;
    let a0 = (1.0 / nf).sqrt();
    let ak = (2.0 / nf).sqrt();
    Matrix::from_fn(n, n, |k, t| {
        let scale = if k == 0 { a0 } else { ak };
        scale * (PI * (2.0 * t as f64 + 1.0) * k as f64 / (2.0 * nf)).cos()
    })
}

fn twiddle_levels(n: usize) -> Vec<Vec<f64>> {
    let mut levels = Vec::new();
    let mut m = n;
    while m >= 2 {
        let mf = m as f64;
        levels.push(
            (0..m / 2)
                .map(|i| ((i as f64 + 0.5) * PI / mf).cos())
                .collect(),
        );
        m /= 2;
    }
    levels
}

impl DctPlan {
    /// Builds a plan for length `n`, choosing the fast Lee kernel for
    /// power-of-two lengths and the dense kernel otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(TransformError::InvalidLength {
                len: 0,
                reason: "dct plan length must be positive",
            });
        }
        let nf = n as f64;
        let kernel = if n.is_power_of_two() {
            DctKernel::Fast
        } else {
            DctKernel::Dense
        };
        let levels = if kernel == DctKernel::Fast {
            twiddle_levels(n)
        } else {
            Vec::new()
        };
        let inv_levels = levels
            .iter()
            .map(|l| l.iter().map(|c| 0.5 / c).collect())
            .collect();
        let a0 = (1.0 / nf).sqrt();
        let ak = (2.0 / nf).sqrt();
        let plan = DctPlan {
            n,
            kernel,
            dense: OnceLock::new(),
            levels,
            inv_levels,
            a0,
            ak,
            inv_a0: 1.0 / a0,
            inv_ak: 1.0 / ak,
        };
        if kernel == DctKernel::Dense {
            let _ = plan.dense.set(cosine_matrix(n));
        }
        Ok(plan)
    }

    /// Builds a plan that always uses the dense cosine-matrix kernel,
    /// even for power-of-two lengths. Reference path for validating the
    /// fast kernel and for benchmarking.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if `n == 0`.
    pub fn with_dense(n: usize) -> Result<Self> {
        let mut plan = DctPlan::new(n)?;
        if plan.kernel == DctKernel::Fast {
            plan.kernel = DctKernel::Dense;
            plan.levels = Vec::new();
            plan.inv_levels = Vec::new();
            let _ = plan.dense.set(cosine_matrix(n));
        }
        Ok(plan)
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` when this plan runs the O(n log n) Lee kernel.
    pub fn is_fast(&self) -> bool {
        self.kernel == DctKernel::Fast
    }

    /// Borrows the orthonormal cosine matrix (built on demand for
    /// fast-kernel plans).
    pub fn matrix(&self) -> &Matrix {
        self.dense.get_or_init(|| cosine_matrix(self.n))
    }

    /// Forward orthonormal DCT-II.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] when `x.len()` differs
    /// from the plan length.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.check(x.len())?;
        let mut out = vec![0.0; self.n];
        self.forward_unchecked(x, &mut out);
        Ok(out)
    }

    /// Inverse transform (orthonormal DCT-III).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] when `x.len()` differs
    /// from the plan length.
    pub fn inverse(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.check(x.len())?;
        let mut out = vec![0.0; self.n];
        self.inverse_unchecked(x, &mut out);
        Ok(out)
    }

    /// Forward transform into a caller-provided buffer (no allocation on
    /// the fast path once the plan scratch is warm).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] when either slice
    /// length differs from the plan length.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        self.check(x.len())?;
        self.check(out.len())?;
        self.forward_unchecked(x, out);
        Ok(())
    }

    /// Inverse transform into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] when either slice
    /// length differs from the plan length.
    pub fn inverse_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        self.check(x.len())?;
        self.check(out.len())?;
        self.inverse_unchecked(x, out);
        Ok(())
    }

    fn forward_unchecked(&self, x: &[f64], out: &mut [f64]) {
        match self.kernel {
            DctKernel::Fast => {
                out.copy_from_slice(x);
                self.with_scratch(|s| lee_forward(out, s, &self.inv_levels));
                out[0] *= self.a0;
                (simd::kernels().scale)(&mut out[1..], self.ak);
            }
            DctKernel::Dense => dense_matvec(self.matrix(), x, out),
        }
    }

    fn inverse_unchecked(&self, x: &[f64], out: &mut [f64]) {
        match self.kernel {
            DctKernel::Fast => {
                out.copy_from_slice(x);
                out[0] *= self.inv_a0;
                (simd::kernels().scale)(&mut out[1..], self.inv_ak);
                self.with_scratch(|s| lee_inverse(out, s, &self.levels));
            }
            DctKernel::Dense => dense_matvec_transpose(self.matrix(), x, out),
        }
    }

    /// Runs `f` with this thread's scratch buffer (resized to n):
    /// contention-free however many threads share the plan. The
    /// `try_borrow_mut` fallback covers re-entrant use only (a transform
    /// invoked from inside another transform's closure).
    fn with_scratch<R>(&self, f: impl FnOnce(&mut [f64]) -> R) -> R {
        PLAN_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut guard) => {
                guard.resize(self.n, 0.0);
                f(&mut guard)
            }
            Err(_) => f(&mut vec![0.0; self.n]),
        })
    }

    fn check(&self, len: usize) -> Result<()> {
        if len != self.n {
            return Err(TransformError::InvalidLength {
                len,
                reason: "input length differs from plan length",
            });
        }
        Ok(())
    }
}

fn dense_matvec(c: &Matrix, x: &[f64], out: &mut [f64]) {
    // Dispatched per-row dot (a reduction: vector tiers re-associate
    // within ≤ 1e-12 relative; the scalar tier matches history exactly).
    let kern = simd::kernels();
    for (k, o) in out.iter_mut().enumerate() {
        *o = (kern.dot)(c.row(k), x);
    }
}

fn dense_matvec_transpose(c: &Matrix, x: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    // Dispatched per-row axpy (elementwise, bit-identical across tiers),
    // keeping the historical zero-coefficient skip.
    let kern = simd::kernels();
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        (kern.axpy)(xi, c.row(i), out);
    }
}

/// In-place unscaled DCT-II by Lee's recursion. `v` holds the input and
/// receives the output; `s` is a same-length workspace; `inv_levels` are
/// the per-level reciprocal twiddles (`0.5 / cos`), so the butterfly is
/// all multiplies.
fn lee_forward(v: &mut [f64], s: &mut [f64], inv_levels: &[Vec<f64>]) {
    let n = v.len();
    if n == 1 {
        return;
    }
    if n == 2 {
        // Unrolled base case: skips two n=1 recursion frames per pair.
        let (x, y) = (v[0], v[1]);
        v[0] = x + y;
        v[1] = (x - y) * inv_levels[0][0];
        return;
    }
    let half = n / 2;
    let recip = &inv_levels[0];
    let (alpha, beta) = s.split_at_mut(half);
    for i in 0..half {
        let x = v[i];
        let y = v[n - 1 - i];
        alpha[i] = x + y;
        beta[i] = (x - y) * recip[i];
    }
    {
        // The input halves of `v` are dead now — reuse them as the
        // recursion's workspace so the whole transform is allocation-free.
        let (va, vb) = v.split_at_mut(half);
        lee_forward(alpha, va, &inv_levels[1..]);
        lee_forward(beta, vb, &inv_levels[1..]);
    }
    for i in 0..half - 1 {
        v[i * 2] = alpha[i];
        v[i * 2 + 1] = beta[i] + beta[i + 1];
    }
    v[n - 2] = alpha[half - 1];
    v[n - 1] = beta[half - 1];
}

/// Exact inverse of [`lee_forward`] (an unscaled DCT-III up to the
/// DCT-II normalization): undoes the interleave, inverts the half-size
/// transforms, and reconstructs the butterfly.
fn lee_inverse(v: &mut [f64], s: &mut [f64], levels: &[Vec<f64>]) {
    let n = v.len();
    if n == 1 {
        return;
    }
    if n == 2 {
        let (a, b) = (v[0], v[1]);
        let diff = 2.0 * levels[0][0] * b;
        v[0] = 0.5 * (a + diff);
        v[1] = 0.5 * (a - diff);
        return;
    }
    let half = n / 2;
    let cosines = &levels[0];
    let (alpha, beta) = s.split_at_mut(half);
    for i in 0..half {
        alpha[i] = v[i * 2];
    }
    beta[half - 1] = v[n - 1];
    for i in (0..half - 1).rev() {
        beta[i] = v[i * 2 + 1] - beta[i + 1];
    }
    {
        let (va, vb) = v.split_at_mut(half);
        lee_inverse(alpha, va, &levels[1..]);
        lee_inverse(beta, vb, &levels[1..]);
    }
    for i in 0..half {
        let diff = 2.0 * cosines[i] * beta[i];
        v[i] = 0.5 * (alpha[i] + diff);
        v[n - 1 - i] = 0.5 * (alpha[i] - diff);
    }
}

/// Multi-lane Lee forward recursion: treats the row-major `n x w` buffer
/// `v` as `w` independent length-`n` lanes (one per column) and applies
/// the butterfly to whole rows at a time. This keeps the column pass of
/// the 2-D transform on contiguous memory — no per-column gather — and
/// lets the compiler vectorize each row operation across lanes.
fn lee_forward_cols(v: &mut [f64], s: &mut [f64], w: usize, inv_levels: &[Vec<f64>]) {
    let n = v.len() / w;
    if n == 1 {
        return;
    }
    if n == 2 {
        let r = inv_levels[0][0];
        let (top, bot) = v.split_at_mut(w);
        for j in 0..w {
            let (x, y) = (top[j], bot[j]);
            top[j] = x + y;
            bot[j] = (x - y) * r;
        }
        return;
    }
    if n == 4 {
        // Fused bottom two levels: one read and one write per lane
        // element, all intermediates in registers.
        let (r0, r1) = (inv_levels[0][0], inv_levels[0][1]);
        let r2 = inv_levels[1][0];
        let (v01, v23) = v.split_at_mut(2 * w);
        let (v0, v1) = v01.split_at_mut(w);
        let (v2, v3) = v23.split_at_mut(w);
        for j in 0..w {
            let a0 = v0[j] + v3[j];
            let a1 = v1[j] + v2[j];
            let b0 = (v0[j] - v3[j]) * r0;
            let b1 = (v1[j] - v2[j]) * r1;
            let bt1 = (b0 - b1) * r2;
            v0[j] = a0 + a1;
            v1[j] = b0 + b1 + bt1;
            v2[j] = (a0 - a1) * r2;
            v3[j] = bt1;
        }
        return;
    }
    let half = n / 2;
    let recip = &inv_levels[0];
    // Lane loops run the dispatched elementwise kernels (bit-identical
    // across tiers); the n = 2 / n = 4 fused base cases above stay
    // scalar — their intermediates live entirely in registers.
    let kern = simd::kernels();
    let (alpha, beta) = s.split_at_mut(half * w);
    for i in 0..half {
        let inv = recip[i];
        let (arow, brow) = (
            &mut alpha[i * w..(i + 1) * w],
            &mut beta[i * w..(i + 1) * w],
        );
        let x = &v[i * w..(i + 1) * w];
        let y = &v[(n - 1 - i) * w..(n - i) * w];
        (kern.butterfly_split)(arow, brow, x, y, inv);
    }
    {
        let (va, vb) = v.split_at_mut(half * w);
        lee_forward_cols(alpha, va, w, &inv_levels[1..]);
        lee_forward_cols(beta, vb, w, &inv_levels[1..]);
    }
    for i in 0..half - 1 {
        v[i * 2 * w..(i * 2 + 1) * w].copy_from_slice(&alpha[i * w..(i + 1) * w]);
        let dst = &mut v[(i * 2 + 1) * w..(i * 2 + 2) * w];
        let (b0, b1) = (&beta[i * w..(i + 1) * w], &beta[(i + 1) * w..(i + 2) * w]);
        (kern.add)(dst, b0, b1);
    }
    v[(n - 2) * w..(n - 1) * w].copy_from_slice(&alpha[(half - 1) * w..half * w]);
    v[(n - 1) * w..n * w].copy_from_slice(&beta[(half - 1) * w..half * w]);
}

/// Multi-lane inverse of [`lee_forward_cols`].
fn lee_inverse_cols(v: &mut [f64], s: &mut [f64], w: usize, levels: &[Vec<f64>]) {
    let n = v.len() / w;
    if n == 1 {
        return;
    }
    if n == 2 {
        let c = levels[0][0];
        let (top, bot) = v.split_at_mut(w);
        for j in 0..w {
            let diff = 2.0 * c * bot[j];
            let a = top[j];
            top[j] = 0.5 * (a + diff);
            bot[j] = 0.5 * (a - diff);
        }
        return;
    }
    if n == 4 {
        // Fused inverse of the two bottom levels (see the forward case).
        let (c0, c1) = (levels[0][0], levels[0][1]);
        let d = 2.0 * levels[1][0];
        let (v01, v23) = v.split_at_mut(2 * w);
        let (v0, v1) = v01.split_at_mut(w);
        let (v2, v3) = v23.split_at_mut(w);
        for j in 0..w {
            let at0 = 0.5 * (v0[j] + d * v2[j]);
            let at1 = 0.5 * (v0[j] - d * v2[j]);
            let b0 = v1[j] - v3[j];
            let bt0 = 0.5 * (b0 + d * v3[j]);
            let bt1 = 0.5 * (b0 - d * v3[j]);
            let diff0 = 2.0 * c0 * bt0;
            let diff1 = 2.0 * c1 * bt1;
            v0[j] = 0.5 * (at0 + diff0);
            v1[j] = 0.5 * (at1 + diff1);
            v2[j] = 0.5 * (at1 - diff1);
            v3[j] = 0.5 * (at0 - diff0);
        }
        return;
    }
    let half = n / 2;
    let cosines = &levels[0];
    // Dispatched elementwise lane kernels, as in the forward recursion.
    let kern = simd::kernels();
    let (alpha, beta) = s.split_at_mut(half * w);
    for i in 0..half {
        alpha[i * w..(i + 1) * w].copy_from_slice(&v[i * 2 * w..(i * 2 + 1) * w]);
    }
    beta[(half - 1) * w..half * w].copy_from_slice(&v[(n - 1) * w..n * w]);
    for i in (0..half - 1).rev() {
        let (head, tail) = beta.split_at_mut((i + 1) * w);
        let dst = &mut head[i * w..];
        let next = &tail[..w];
        let src = &v[(i * 2 + 1) * w..(i * 2 + 2) * w];
        (kern.sub)(dst, src, next);
    }
    {
        let (va, vb) = v.split_at_mut(half * w);
        lee_inverse_cols(alpha, va, w, &levels[1..]);
        lee_inverse_cols(beta, vb, w, &levels[1..]);
    }
    for i in 0..half {
        let twice_cos = 2.0 * cosines[i];
        let (arow, brow) = (&alpha[i * w..(i + 1) * w], &beta[i * w..(i + 1) * w]);
        let (head, tail) = v.split_at_mut((n - 1 - i) * w);
        let top = &mut head[i * w..(i + 1) * w];
        let bottom = &mut tail[..w];
        (kern.butterfly_merge)(top, bottom, arow, brow, twice_cos);
    }
}

/// Scratch buffers reused across [`Dct2d`] applications on the same
/// thread: two frame-sized multi-lane workspaces (transpose staging
/// plus recursion scratch) and two strips for the dense fallback.
#[derive(Debug, Default)]
struct Dct2dScratch {
    aux: Vec<f64>,
    aux2: Vec<f64>,
    strip: Vec<f64>,
    strip_out: Vec<f64>,
}

/// Tiled out-of-place transpose: `src` is `rows x cols`, `dst` becomes
/// `cols x rows`. Tiling keeps both access streams cache-resident.
fn transpose_into(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    const TILE: usize = 32;
    for ib in (0..rows).step_by(TILE) {
        let i_end = (ib + TILE).min(rows);
        for jb in (0..cols).step_by(TILE) {
            let j_end = (jb + TILE).min(cols);
            for i in ib..i_end {
                let srow = &src[i * cols..(i + 1) * cols];
                for j in jb..j_end {
                    dst[j * rows + i] = srow[j];
                }
            }
        }
    }
}

/// A 2-D separable orthonormal DCT for `rows x cols` frames.
///
/// Each axis runs through a [`DctPlan`] (fast Lee kernel on
/// power-of-two extents), and intermediate row/column buffers live in
/// per-thread scratch storage so decoding many frames through one plan
/// performs no per-call allocation beyond the output matrix — even when
/// many worker threads share one cached plan (the block-tiled decode
/// fan-out), since thread-local scratch needs no lock at all.
///
/// # Examples
///
/// ```
/// use flexcs_transform::Dct2d;
/// use flexcs_linalg::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dct = Dct2d::new(4, 6)?;
/// let img = Matrix::from_fn(4, 6, |i, j| (i + j) as f64);
/// let coeffs = dct.forward(&img)?;
/// let back = dct.inverse(&coeffs)?;
/// assert!(back.max_abs_diff(&img)? < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dct2d {
    row_plan: DctPlan,
    col_plan: DctPlan,
}

impl Dct2d {
    /// Builds a 2-D plan for `rows x cols` frames.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        Ok(Dct2d {
            row_plan: DctPlan::new(cols)?,
            col_plan: DctPlan::new(rows)?,
        })
    }

    /// Builds a 2-D plan that forces the dense cosine-matrix kernel on
    /// both axes (reference/benchmark path).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if either dimension is
    /// zero.
    pub fn with_dense(rows: usize, cols: usize) -> Result<Self> {
        Ok(Dct2d {
            row_plan: DctPlan::with_dense(cols)?,
            col_plan: DctPlan::with_dense(rows)?,
        })
    }

    /// Frame shape `(rows, cols)` accepted by this plan.
    pub fn shape(&self) -> (usize, usize) {
        (self.col_plan.len(), self.row_plan.len())
    }

    /// `true` when both axes run the O(n log n) kernel.
    pub fn is_fast(&self) -> bool {
        self.row_plan.is_fast() && self.col_plan.is_fast()
    }

    /// Forward 2-D DCT-II of a frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ShapeMismatch`] when the frame shape
    /// differs from the plan shape.
    pub fn forward(&self, frame: &Matrix) -> Result<Matrix> {
        self.apply(frame, true)
    }

    /// Inverse 2-D DCT (orthonormal DCT-III) of a coefficient frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ShapeMismatch`] when the coefficient
    /// shape differs from the plan shape.
    pub fn inverse(&self, coeffs: &Matrix) -> Result<Matrix> {
        self.apply(coeffs, false)
    }

    fn apply(&self, frame: &Matrix, forward: bool) -> Result<Matrix> {
        self.check(frame)?;
        let (rows, cols) = frame.shape();
        let mut out = Matrix::zeros(rows, cols);
        self.with_scratch(|s| {
            // Separable transform: rows then columns (forward) or
            // columns then rows (inverse); order only matters for
            // matching the adjoint exactly, cost is identical. Both
            // passes run the multi-lane kernel over contiguous memory —
            // the row pass through a tiled transpose — so every
            // butterfly vectorizes across lanes.
            if forward {
                self.row_pass_forward(frame, &mut out, s);
                self.col_pass(&mut out, s, true);
            } else {
                out.as_mut_slice().copy_from_slice(frame.as_slice());
                self.col_pass(&mut out, s, false);
                self.row_pass_inverse(&mut out, s);
            }
        });
        Ok(out)
    }

    /// Row pass of the forward transform: transpose, run the multi-lane
    /// Lee kernel along the original row direction, transpose back
    /// (fast plan), or dense per-row matvecs (dense plan).
    fn row_pass_forward(&self, frame: &Matrix, out: &mut Matrix, s: &mut Dct2dScratch) {
        let (rows, cols) = frame.shape();
        let plan = &self.row_plan;
        match plan.kernel {
            DctKernel::Fast => {
                s.aux.resize(rows * cols, 0.0);
                s.aux2.resize(rows * cols, 0.0);
                transpose_into(frame.as_slice(), &mut s.aux, rows, cols);
                lee_forward_cols(&mut s.aux, &mut s.aux2, rows, &plan.inv_levels);
                let kern = simd::kernels();
                (kern.scale)(&mut s.aux[..rows], plan.a0);
                (kern.scale)(&mut s.aux[rows..], plan.ak);
                transpose_into(&s.aux, out.as_mut_slice(), cols, rows);
            }
            DctKernel::Dense => {
                let c = plan.matrix();
                for i in 0..rows {
                    dense_matvec(c, frame.row(i), out.row_mut(i));
                }
            }
        }
    }

    /// Row pass of the inverse transform, in place on `out`.
    fn row_pass_inverse(&self, out: &mut Matrix, s: &mut Dct2dScratch) {
        let (rows, cols) = out.shape();
        let plan = &self.row_plan;
        match plan.kernel {
            DctKernel::Fast => {
                s.aux.resize(rows * cols, 0.0);
                s.aux2.resize(rows * cols, 0.0);
                transpose_into(out.as_slice(), &mut s.aux, rows, cols);
                let kern = simd::kernels();
                (kern.scale)(&mut s.aux[..rows], plan.inv_a0);
                (kern.scale)(&mut s.aux[rows..], plan.inv_ak);
                lee_inverse_cols(&mut s.aux, &mut s.aux2, rows, &plan.levels);
                transpose_into(&s.aux, out.as_mut_slice(), cols, rows);
            }
            DctKernel::Dense => {
                let c = plan.matrix();
                for i in 0..rows {
                    let v = out.row_mut(i);
                    s.strip.clear();
                    s.strip.extend_from_slice(v);
                    dense_matvec_transpose(c, &s.strip, v);
                }
            }
        }
    }

    /// Column pass over `m`'s storage: a multi-lane Lee recursion over
    /// whole rows when the column plan is fast (contiguous memory, no
    /// per-column gather), dense per-column matvecs otherwise.
    fn col_pass(&self, m: &mut Matrix, s: &mut Dct2dScratch, forward: bool) {
        let (rows, cols) = m.shape();
        let plan = &self.col_plan;
        match plan.kernel {
            DctKernel::Fast => {
                s.aux.resize(rows * cols, 0.0);
                let data = m.as_mut_slice();
                let kern = simd::kernels();
                if forward {
                    lee_forward_cols(data, &mut s.aux, cols, &plan.inv_levels);
                    (kern.scale)(&mut data[..cols], plan.a0);
                    (kern.scale)(&mut data[cols..], plan.ak);
                } else {
                    (kern.scale)(&mut data[..cols], plan.inv_a0);
                    (kern.scale)(&mut data[cols..], plan.inv_ak);
                    lee_inverse_cols(data, &mut s.aux, cols, &plan.levels);
                }
            }
            DctKernel::Dense => {
                s.strip.resize(rows, 0.0);
                s.strip_out.resize(rows, 0.0);
                let c = plan.matrix();
                let data = m.as_mut_slice();
                for j in 0..cols {
                    for i in 0..rows {
                        s.strip[i] = data[i * cols + j];
                    }
                    if forward {
                        dense_matvec(c, &s.strip, &mut s.strip_out);
                    } else {
                        dense_matvec_transpose(c, &s.strip, &mut s.strip_out);
                    }
                    for i in 0..rows {
                        data[i * cols + j] = s.strip_out[i];
                    }
                }
            }
        }
    }

    /// Runs `f` with this thread's frame scratch; the `try_borrow_mut`
    /// fallback covers re-entrant use only.
    fn with_scratch<R>(&self, f: impl FnOnce(&mut Dct2dScratch) -> R) -> R {
        FRAME_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut guard) => f(&mut guard),
            Err(_) => f(&mut Dct2dScratch::default()),
        })
    }

    fn check(&self, frame: &Matrix) -> Result<()> {
        if frame.shape() != self.shape() {
            return Err(TransformError::ShapeMismatch {
                expected: self.shape(),
                got: frame.shape(),
            });
        }
        Ok(())
    }
}

/// Unscaled DCT-II by Lee's recursive algorithm, valid for power-of-two
/// lengths. Computes `X_k = Σ_t x_t · cos(π (2t + 1) k / (2n))` in
/// O(n log n).
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless `x.len()` is a
/// positive power of two.
pub fn fast_dct2_unscaled(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "fast dct requires a positive power-of-two length",
        });
    }
    let mut v = x.to_vec();
    let mut s = vec![0.0; n];
    let inv_levels: Vec<Vec<f64>> = twiddle_levels(n)
        .iter()
        .map(|l| l.iter().map(|c| 0.5 / c).collect())
        .collect();
    lee_forward(&mut v, &mut s, &inv_levels);
    Ok(v)
}

/// Orthonormal DCT-II for power-of-two lengths, via the fast Lee
/// recursion; numerically equivalent to [`DctPlan::forward`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless `x.len()` is a
/// positive power of two.
pub fn fast_dct2_orthonormal(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len() as f64;
    let mut v = fast_dct2_unscaled(x)?;
    let a0 = (1.0 / n).sqrt();
    let ak = (2.0 / n).sqrt();
    if let Some(first) = v.first_mut() {
        *first *= a0;
    }
    for item in v.iter_mut().skip(1) {
        *item *= ak;
    }
    Ok(v)
}

/// Orthonormal DCT-III (the inverse of [`fast_dct2_orthonormal`]) for
/// power-of-two lengths, via the inverse Lee recursion; numerically
/// equivalent to [`DctPlan::inverse`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless `x.len()` is a
/// positive power of two.
pub fn fast_dct3_orthonormal(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "fast dct requires a positive power-of-two length",
        });
    }
    let nf = n as f64;
    let mut v = x.to_vec();
    v[0] /= (1.0 / nf).sqrt();
    let ak = (2.0 / nf).sqrt();
    for item in v.iter_mut().skip(1) {
        *item /= ak;
    }
    let mut s = vec![0.0; n];
    lee_inverse(&mut v, &mut s, &twiddle_levels(n));
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dct2_unscaled(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                x.iter()
                    .enumerate()
                    .map(|(t, &v)| {
                        v * (PI * (2.0 * t as f64 + 1.0) * k as f64 / (2.0 * n as f64)).cos()
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn plan_rejects_zero_length() {
        assert!(DctPlan::new(0).is_err());
        assert!(DctPlan::with_dense(0).is_err());
    }

    #[test]
    fn kernel_dispatch_follows_length() {
        assert!(DctPlan::new(64).unwrap().is_fast());
        assert!(DctPlan::new(1).unwrap().is_fast());
        assert!(!DctPlan::new(100).unwrap().is_fast());
        assert!(!DctPlan::with_dense(64).unwrap().is_fast());
        assert!(Dct2d::new(8, 16).unwrap().is_fast());
        assert!(!Dct2d::new(8, 12).unwrap().is_fast());
        assert!(!Dct2d::with_dense(8, 8).unwrap().is_fast());
    }

    #[test]
    fn plan_matrix_is_orthonormal() {
        let plan = DctPlan::new(16).unwrap();
        let c = plan.matrix();
        let prod = c.matmul(&c.transpose()).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(16)).unwrap() < 1e-12);
    }

    #[test]
    fn roundtrip_1d() {
        for n in [1usize, 2, 11, 16, 64] {
            let plan = DctPlan::new(n).unwrap();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let y = plan.forward(&x).unwrap();
            let back = plan.inverse(&y).unwrap();
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn fast_and_dense_kernels_agree() {
        for n in [1usize, 2, 8, 64, 256] {
            let fast = DctPlan::new(n).unwrap();
            let dense = DctPlan::with_dense(n).unwrap();
            assert!(fast.is_fast() && !dense.is_fast());
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * i) as f64 * 0.13).sin() * 4.0)
                .collect();
            let yf = fast.forward(&x).unwrap();
            let yd = dense.forward(&x).unwrap();
            for (a, b) in yf.iter().zip(&yd) {
                assert!((a - b).abs() < 1e-10, "forward n={n}: {a} vs {b}");
            }
            let bf = fast.inverse(&yf).unwrap();
            let bd = dense.inverse(&yf).unwrap();
            for (a, b) in bf.iter().zip(&bd) {
                assert!((a - b).abs() < 1e-10, "inverse n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_into_matches_forward_and_reuses_buffer() {
        let plan = DctPlan::new(32).unwrap();
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut out = vec![0.0; 32];
        plan.forward_into(&x, &mut out).unwrap();
        assert_eq!(out, plan.forward(&x).unwrap());
        let mut back = vec![0.0; 32];
        plan.inverse_into(&out, &mut back).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(plan.forward_into(&x, &mut [0.0; 3]).is_err());
    }

    #[test]
    fn parseval_energy_preserved() {
        let plan = DctPlan::new(9).unwrap();
        let x: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let y = plan.forward(&x).unwrap();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-10);
    }

    #[test]
    fn constant_signal_has_single_dc_coefficient() {
        let plan = DctPlan::new(8).unwrap();
        let y = plan.forward(&[2.0; 8]).unwrap();
        assert!((y[0] - 2.0 * 8.0_f64.sqrt()).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let plan = DctPlan::new(4).unwrap();
        assert!(plan.forward(&[1.0; 5]).is_err());
        assert!(plan.inverse(&[1.0; 3]).is_err());
    }

    #[test]
    fn dct2d_roundtrip_rect() {
        let d = Dct2d::new(5, 7).unwrap();
        let img = Matrix::from_fn(5, 7, |i, j| ((i * 3 + j) as f64 * 0.7).cos());
        let c = d.forward(&img).unwrap();
        let back = d.inverse(&c).unwrap();
        assert!(back.max_abs_diff(&img).unwrap() < 1e-12);
    }

    #[test]
    fn dct2d_fast_matches_dense() {
        for (rows, cols) in [(8usize, 8usize), (16, 32), (16, 12)] {
            let fast = Dct2d::new(rows, cols).unwrap();
            let dense = Dct2d::with_dense(rows, cols).unwrap();
            let img = Matrix::from_fn(rows, cols, |i, j| ((i * 5 + j * 3) as f64 * 0.21).sin());
            let cf = fast.forward(&img).unwrap();
            let cd = dense.forward(&img).unwrap();
            assert!(
                cf.max_abs_diff(&cd).unwrap() < 1e-10,
                "{rows}x{cols} forward"
            );
            let bf = fast.inverse(&cf).unwrap();
            let bd = dense.inverse(&cf).unwrap();
            assert!(
                bf.max_abs_diff(&bd).unwrap() < 1e-10,
                "{rows}x{cols} inverse"
            );
        }
    }

    #[test]
    fn dct2d_repeated_frames_are_stable() {
        // Scratch reuse must not leak state between applications.
        let d = Dct2d::new(16, 16).unwrap();
        let a = Matrix::from_fn(16, 16, |i, j| ((i + 2 * j) as f64 * 0.11).sin());
        let b = Matrix::from_fn(16, 16, |i, j| ((3 * i + j) as f64 * 0.07).cos());
        let ca1 = d.forward(&a).unwrap();
        let _cb = d.forward(&b).unwrap();
        let ca2 = d.forward(&a).unwrap();
        assert_eq!(ca1.as_slice(), ca2.as_slice());
    }

    #[test]
    fn dct2d_energy_preserved() {
        let d = Dct2d::new(6, 6).unwrap();
        let img = Matrix::from_fn(6, 6, |i, j| (i as f64 - j as f64) * 0.5);
        let c = d.forward(&img).unwrap();
        assert!((img.norm_fro() - c.norm_fro()).abs() < 1e-10);
    }

    #[test]
    fn dct2d_shape_mismatch_rejected() {
        let d = Dct2d::new(4, 4).unwrap();
        assert!(d.forward(&Matrix::zeros(4, 5)).is_err());
        assert!(matches!(
            d.inverse(&Matrix::zeros(3, 4)),
            Err(TransformError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn dct2d_of_constant_is_dc_only() {
        let d = Dct2d::new(4, 4).unwrap();
        let img = Matrix::filled(4, 4, 1.0);
        let c = d.forward(&img).unwrap();
        assert!((c[(0, 0)] - 4.0).abs() < 1e-12);
        assert!(c.norm_l1() - c[(0, 0)].abs() < 1e-10);
    }

    #[test]
    fn fast_matches_naive_unscaled() {
        for &n in &[2usize, 4, 8, 16, 32, 64] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.13).sin()).collect();
            let fast = fast_dct2_unscaled(&x).unwrap();
            let naive = naive_dct2_unscaled(&x);
            for (a, b) in fast.iter().zip(&naive) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_orthonormal_matches_dense_plan() {
        let n = 32;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let fast = fast_dct2_orthonormal(&x).unwrap();
        let plan = DctPlan::with_dense(n).unwrap().forward(&x).unwrap();
        for (a, b) in fast.iter().zip(&plan) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_dct3_inverts_fast_dct2() {
        for n in [1usize, 4, 32, 128] {
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
            let y = fast_dct2_orthonormal(&x).unwrap();
            let back = fast_dct3_orthonormal(&y).unwrap();
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn fast_rejects_non_power_of_two() {
        assert!(fast_dct2_unscaled(&[1.0; 12]).is_err());
        assert!(fast_dct2_unscaled(&[]).is_err());
        assert!(fast_dct3_orthonormal(&[1.0; 12]).is_err());
        assert!(fast_dct3_orthonormal(&[]).is_err());
    }
}
