//! Orthonormal DCT-II / DCT-III (inverse) transforms, 1-D and 2-D.
//!
//! The paper expresses sensor frames in the 2-D DCT basis (Eqs. 3–7) and
//! reconstructs with the IDCT. We provide a plan-based implementation
//! (precomputed cosine matrix, exact for every size) plus a fast
//! Lee-recursion path for power-of-two lengths used by the benchmark
//! harness.

use crate::error::{Result, TransformError};
use flexcs_linalg::Matrix;
use std::f64::consts::PI;

/// A precomputed orthonormal DCT-II plan for a fixed length.
///
/// The plan stores the `n x n` cosine matrix `C` with
/// `C[k][t] = a_k · cos(π (2t + 1) k / (2n))`, `a_0 = √(1/n)`,
/// `a_k = √(2/n)`. Forward transform is `C·x`; the inverse is `Cᵀ·x`
/// because `C` is orthonormal.
///
/// # Examples
///
/// ```
/// use flexcs_transform::DctPlan;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = DctPlan::new(8)?;
/// let x = vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0];
/// let coeffs = plan.forward(&x)?;
/// let back = plan.inverse(&coeffs)?;
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DctPlan {
    n: usize,
    /// Row-major `n x n` forward DCT-II matrix.
    c: Matrix,
}

impl DctPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(TransformError::InvalidLength {
                len: 0,
                reason: "dct plan length must be positive",
            });
        }
        let nf = n as f64;
        let a0 = (1.0 / nf).sqrt();
        let ak = (2.0 / nf).sqrt();
        let c = Matrix::from_fn(n, n, |k, t| {
            let scale = if k == 0 { a0 } else { ak };
            scale * (PI * (2.0 * t as f64 + 1.0) * k as f64 / (2.0 * nf)).cos()
        });
        Ok(DctPlan { n, c })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrows the orthonormal cosine matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.c
    }

    /// Forward orthonormal DCT-II.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] when `x.len()` differs
    /// from the plan length.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.check(x)?;
        Ok(self.c.matvec(x).expect("plan matrix is n x n"))
    }

    /// Inverse transform (orthonormal DCT-III).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] when `x.len()` differs
    /// from the plan length.
    pub fn inverse(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.check(x)?;
        Ok(self.c.matvec_transpose(x).expect("plan matrix is n x n"))
    }

    fn check(&self, x: &[f64]) -> Result<()> {
        if x.len() != self.n {
            return Err(TransformError::InvalidLength {
                len: x.len(),
                reason: "input length differs from plan length",
            });
        }
        Ok(())
    }
}

/// A 2-D separable orthonormal DCT for `rows x cols` frames.
///
/// # Examples
///
/// ```
/// use flexcs_transform::Dct2d;
/// use flexcs_linalg::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dct = Dct2d::new(4, 6)?;
/// let img = Matrix::from_fn(4, 6, |i, j| (i + j) as f64);
/// let coeffs = dct.forward(&img)?;
/// let back = dct.inverse(&coeffs)?;
/// assert!(back.max_abs_diff(&img)? < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dct2d {
    row_plan: DctPlan,
    col_plan: DctPlan,
}

impl Dct2d {
    /// Builds a 2-D plan for `rows x cols` frames.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        Ok(Dct2d {
            row_plan: DctPlan::new(cols)?,
            col_plan: DctPlan::new(rows)?,
        })
    }

    /// Frame shape `(rows, cols)` accepted by this plan.
    pub fn shape(&self) -> (usize, usize) {
        (self.col_plan.len(), self.row_plan.len())
    }

    /// Forward 2-D DCT-II of a frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ShapeMismatch`] when the frame shape
    /// differs from the plan shape.
    pub fn forward(&self, frame: &Matrix) -> Result<Matrix> {
        self.check(frame)?;
        // Rows then columns; separability makes the order irrelevant.
        let (rows, cols) = frame.shape();
        let mut tmp = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let t = self.row_plan.forward(frame.row(i))?;
            tmp.row_mut(i).copy_from_slice(&t);
        }
        let mut out = Matrix::zeros(rows, cols);
        for j in 0..cols {
            let col: Vec<f64> = tmp.col(j);
            let t = self.col_plan.forward(&col)?;
            for i in 0..rows {
                out[(i, j)] = t[i];
            }
        }
        Ok(out)
    }

    /// Inverse 2-D DCT (orthonormal DCT-III) of a coefficient frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ShapeMismatch`] when the coefficient
    /// shape differs from the plan shape.
    pub fn inverse(&self, coeffs: &Matrix) -> Result<Matrix> {
        self.check(coeffs)?;
        let (rows, cols) = coeffs.shape();
        let mut tmp = Matrix::zeros(rows, cols);
        for j in 0..cols {
            let col: Vec<f64> = coeffs.col(j);
            let t = self.col_plan.inverse(&col)?;
            for i in 0..rows {
                tmp[(i, j)] = t[i];
            }
        }
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let t = self.row_plan.inverse(tmp.row(i))?;
            out.row_mut(i).copy_from_slice(&t);
        }
        Ok(out)
    }

    fn check(&self, frame: &Matrix) -> Result<()> {
        if frame.shape() != self.shape() {
            return Err(TransformError::ShapeMismatch {
                expected: self.shape(),
                got: frame.shape(),
            });
        }
        Ok(())
    }
}

/// Unscaled DCT-II by Lee's recursive algorithm, valid for power-of-two
/// lengths. Computes `X_k = Σ_t x_t · cos(π (2t + 1) k / (2n))` in
/// O(n log n).
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless `x.len()` is a
/// positive power of two.
pub fn fast_dct2_unscaled(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "fast dct requires a positive power-of-two length",
        });
    }
    let mut v = x.to_vec();
    lee_forward(&mut v);
    Ok(v)
}

fn lee_forward(v: &mut [f64]) {
    let n = v.len();
    if n == 1 {
        return;
    }
    let half = n / 2;
    let mut alpha = vec![0.0; half];
    let mut beta = vec![0.0; half];
    for i in 0..half {
        let x = v[i];
        let y = v[n - 1 - i];
        alpha[i] = x + y;
        beta[i] = (x - y) / (((i as f64 + 0.5) * PI / n as f64).cos() * 2.0);
    }
    lee_forward(&mut alpha);
    lee_forward(&mut beta);
    for i in 0..half - 1 {
        v[i * 2] = alpha[i];
        v[i * 2 + 1] = beta[i] + beta[i + 1];
    }
    v[n - 2] = alpha[half - 1];
    v[n - 1] = beta[half - 1];
}

/// Orthonormal DCT-II for power-of-two lengths, via the fast Lee
/// recursion; numerically equivalent to [`DctPlan::forward`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless `x.len()` is a
/// positive power of two.
pub fn fast_dct2_orthonormal(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len() as f64;
    let mut v = fast_dct2_unscaled(x)?;
    let a0 = (1.0 / n).sqrt();
    let ak = (2.0 / n).sqrt();
    if let Some(first) = v.first_mut() {
        *first *= a0;
    }
    for item in v.iter_mut().skip(1) {
        *item *= ak;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dct2_unscaled(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                x.iter()
                    .enumerate()
                    .map(|(t, &v)| v * (PI * (2.0 * t as f64 + 1.0) * k as f64 / (2.0 * n as f64)).cos())
                    .sum()
            })
            .collect()
    }

    #[test]
    fn plan_rejects_zero_length() {
        assert!(DctPlan::new(0).is_err());
    }

    #[test]
    fn plan_matrix_is_orthonormal() {
        let plan = DctPlan::new(16).unwrap();
        let c = plan.matrix();
        let prod = c.matmul(&c.transpose()).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(16)).unwrap() < 1e-12);
    }

    #[test]
    fn roundtrip_1d() {
        let plan = DctPlan::new(11).unwrap();
        let x: Vec<f64> = (0..11).map(|i| (i as f64 * 0.3).sin()).collect();
        let y = plan.forward(&x).unwrap();
        let back = plan.inverse(&y).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let plan = DctPlan::new(9).unwrap();
        let x: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let y = plan.forward(&x).unwrap();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-10);
    }

    #[test]
    fn constant_signal_has_single_dc_coefficient() {
        let plan = DctPlan::new(8).unwrap();
        let y = plan.forward(&[2.0; 8]).unwrap();
        assert!((y[0] - 2.0 * 8.0_f64.sqrt()).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let plan = DctPlan::new(4).unwrap();
        assert!(plan.forward(&[1.0; 5]).is_err());
        assert!(plan.inverse(&[1.0; 3]).is_err());
    }

    #[test]
    fn dct2d_roundtrip_rect() {
        let d = Dct2d::new(5, 7).unwrap();
        let img = Matrix::from_fn(5, 7, |i, j| ((i * 3 + j) as f64 * 0.7).cos());
        let c = d.forward(&img).unwrap();
        let back = d.inverse(&c).unwrap();
        assert!(back.max_abs_diff(&img).unwrap() < 1e-12);
    }

    #[test]
    fn dct2d_energy_preserved() {
        let d = Dct2d::new(6, 6).unwrap();
        let img = Matrix::from_fn(6, 6, |i, j| (i as f64 - j as f64) * 0.5);
        let c = d.forward(&img).unwrap();
        assert!((img.norm_fro() - c.norm_fro()).abs() < 1e-10);
    }

    #[test]
    fn dct2d_shape_mismatch_rejected() {
        let d = Dct2d::new(4, 4).unwrap();
        assert!(d.forward(&Matrix::zeros(4, 5)).is_err());
        assert!(matches!(
            d.inverse(&Matrix::zeros(3, 4)),
            Err(TransformError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn dct2d_of_constant_is_dc_only() {
        let d = Dct2d::new(4, 4).unwrap();
        let img = Matrix::filled(4, 4, 1.0);
        let c = d.forward(&img).unwrap();
        assert!((c[(0, 0)] - 4.0).abs() < 1e-12);
        assert!(c.norm_l1() - c[(0, 0)].abs() < 1e-10);
    }

    #[test]
    fn fast_matches_naive_unscaled() {
        for &n in &[2usize, 4, 8, 16, 32, 64] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.13).sin()).collect();
            let fast = fast_dct2_unscaled(&x).unwrap();
            let naive = naive_dct2_unscaled(&x);
            for (a, b) in fast.iter().zip(&naive) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_orthonormal_matches_plan() {
        let n = 32;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let fast = fast_dct2_orthonormal(&x).unwrap();
        let plan = DctPlan::new(n).unwrap().forward(&x).unwrap();
        for (a, b) in fast.iter().zip(&plan) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_rejects_non_power_of_two() {
        assert!(fast_dct2_unscaled(&[1.0; 12]).is_err());
        assert!(fast_dct2_unscaled(&[]).is_err());
    }
}
