//! Dense 2-D DCT basis matrix Ψ (paper Eqs. 4–7).
//!
//! The paper writes the sensor frame as `y = Ψ·x` with `y` the vectorized
//! pixel values and `x` the vectorized DCT coefficients. For solvers we
//! normally apply Ψ implicitly through [`crate::Dct2d`] (an O(N^1.5)
//! separable transform); this module also materializes the dense `N x N`
//! matrix for validation, coherence analysis and small problems.

use crate::dct::Dct2d;
use crate::error::Result;
use flexcs_linalg::Matrix;

/// Builds the dense orthonormal basis Ψ for `rows x cols` frames.
///
/// Vectorization is row-major: pixel `(a, b)` maps to index `a·cols + b`
/// and coefficient `(u, v)` to `u·cols + v`. The entry is
/// `Ψ[(a·cols+b), (u·cols+v)] = α_u β_v cos(π(2a+1)u / (2·rows)) ·
/// cos(π(2b+1)v / (2·cols))`, exactly Eq. 5 generalized to rectangular
/// frames.
///
/// # Errors
///
/// Returns a transform error if either dimension is zero.
///
/// # Examples
///
/// ```
/// use flexcs_transform::psi_matrix;
/// use flexcs_linalg::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let psi = psi_matrix(4, 4)?;
/// // Ψ is orthonormal: ΨᵀΨ = I.
/// let g = psi.transpose().matmul(&psi)?;
/// assert!(g.max_abs_diff(&Matrix::identity(16))? < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn psi_matrix(rows: usize, cols: usize) -> Result<Matrix> {
    let plan = Dct2d::new(rows, cols)?;
    let n = rows * cols;
    // Column (u, v) of Ψ is the inverse DCT of the (u, v) unit coefficient.
    let mut psi = Matrix::zeros(n, n);
    let mut unit = Matrix::zeros(rows, cols);
    for u in 0..rows {
        for v in 0..cols {
            unit[(u, v)] = 1.0;
            let img = plan.inverse(&unit)?;
            unit[(u, v)] = 0.0;
            let col = u * cols + v;
            for a in 0..rows {
                for b in 0..cols {
                    psi[(a * cols + b, col)] = img[(a, b)];
                }
            }
        }
    }
    Ok(psi)
}

/// Vectorizes a frame row-major (`(a, b) -> a·cols + b`), the ordering
/// [`psi_matrix`] assumes.
pub fn vectorize(frame: &Matrix) -> Vec<f64> {
    frame.to_flat()
}

/// Reshapes a row-major vector back into a `rows x cols` frame.
///
/// # Errors
///
/// Returns a transform error if `v.len() != rows·cols`.
pub fn devectorize(v: &[f64], rows: usize, cols: usize) -> Result<Matrix> {
    Matrix::from_vec(rows, cols, v.to_vec()).map_err(|_| {
        crate::error::TransformError::InvalidLength {
            len: v.len(),
            reason: "vector length does not match frame shape",
        }
    })
}

/// Mutual coherence of a matrix: the maximum absolute normalized inner
/// product between distinct columns. Low coherence between the sampling
/// and sparsity bases is the classic CS recovery condition.
pub fn mutual_coherence(a: &Matrix) -> f64 {
    let n = a.cols();
    let mut norms = vec![0.0; n];
    for (j, norm) in norms.iter_mut().enumerate() {
        let col = a.col(j);
        *norm = flexcs_linalg::vecops::norm2(&col);
    }
    let mut mu = 0.0_f64;
    for j in 0..n {
        let cj = a.col(j);
        for k in (j + 1)..n {
            let ck = a.col(k);
            let denom = norms[j] * norms[k];
            if denom > 0.0 {
                mu = mu.max(flexcs_linalg::vecops::dot(&cj, &ck).abs() / denom);
            }
        }
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_is_orthonormal() {
        let psi = psi_matrix(3, 5).unwrap();
        let g = psi.transpose().matmul(&psi).unwrap();
        assert!(g.max_abs_diff(&Matrix::identity(15)).unwrap() < 1e-12);
    }

    #[test]
    fn psi_matches_separable_transform() {
        let rows = 4;
        let cols = 3;
        let plan = Dct2d::new(rows, cols).unwrap();
        let psi = psi_matrix(rows, cols).unwrap();
        let coeffs = Matrix::from_fn(rows, cols, |i, j| ((i * cols + j) as f64 * 0.37).sin());
        let img_sep = plan.inverse(&coeffs).unwrap();
        let img_vec = psi.matvec(&vectorize(&coeffs)).unwrap();
        let img_dense = devectorize(&img_vec, rows, cols).unwrap();
        assert!(img_dense.max_abs_diff(&img_sep).unwrap() < 1e-12);
    }

    #[test]
    fn psi_matches_paper_eq5_form() {
        use std::f64::consts::PI;
        // Square array, compare a few entries against the explicit Eq. 5.
        let s = 4usize; // sqrt(N)
        let psi = psi_matrix(s, s).unwrap();
        let nf = s as f64;
        let alpha = |u: usize| {
            if u == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            }
        };
        for a in 0..s {
            for b in 0..s {
                for u in 0..s {
                    for v in 0..s {
                        let expect = alpha(u)
                            * alpha(v)
                            * (PI * (2.0 * a as f64 + 1.0) * u as f64 / (2.0 * nf)).cos()
                            * (PI * (2.0 * b as f64 + 1.0) * v as f64 / (2.0 * nf)).cos();
                        let got = psi[(a * s + b, u * s + v)];
                        assert!((expect - got).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn vectorize_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = vectorize(&m);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);
        let back = devectorize(&v, 2, 2).unwrap();
        assert_eq!(back, m);
        assert!(devectorize(&v, 3, 2).is_err());
    }

    #[test]
    fn coherence_of_identity_is_zero() {
        assert_eq!(mutual_coherence(&Matrix::identity(4)), 0.0);
    }

    #[test]
    fn coherence_of_repeated_column_is_one() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!((mutual_coherence(&a) - 1.0).abs() < 1e-12);
    }
}
