//! Zig-zag scan ordering for 2-D transform coefficients.
//!
//! DCT energy concentrates in the low-frequency corner; the zig-zag order
//! linearizes coefficients roughly by increasing frequency, which is how
//! the Fig. 2a "sorted coefficient" intuition maps onto frame layout and
//! how best-K masks can be chosen deterministically.

use flexcs_linalg::Matrix;

/// Returns the zig-zag visit order of a `rows x cols` grid as `(row, col)`
/// pairs, starting at `(0, 0)` and traversing anti-diagonals alternately
/// up and down (JPEG convention).
pub fn zigzag_order(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let mut order = Vec::with_capacity(rows * cols);
    if rows == 0 || cols == 0 {
        return order;
    }
    for s in 0..(rows + cols - 1) {
        if s % 2 == 0 {
            // Upward: start low-left of the diagonal, move to top-right.
            let i0 = s.min(rows - 1);
            let mut i = i0 as isize;
            let mut j = (s - i0) as isize;
            while i >= 0 && (j as usize) < cols {
                order.push((i as usize, j as usize));
                i -= 1;
                j += 1;
            }
        } else {
            // Downward: start top-right of the diagonal, move to low-left.
            let j0 = s.min(cols - 1);
            let mut j = j0 as isize;
            let mut i = (s - j0) as isize;
            while j >= 0 && (i as usize) < rows {
                order.push((i as usize, j as usize));
                i += 1;
                j -= 1;
            }
        }
    }
    order
}

/// Flattens a frame in zig-zag order.
pub fn zigzag_scan(frame: &Matrix) -> Vec<f64> {
    zigzag_order(frame.rows(), frame.cols())
        .into_iter()
        .map(|(i, j)| frame[(i, j)])
        .collect()
}

/// Rebuilds a frame from its zig-zag flattening.
///
/// # Panics
///
/// Panics if `values.len() != rows·cols`.
pub fn zigzag_unscan(values: &[f64], rows: usize, cols: usize) -> Matrix {
    assert_eq!(
        values.len(),
        rows * cols,
        "zigzag_unscan: need rows*cols values"
    );
    let mut m = Matrix::zeros(rows, cols);
    for ((i, j), &v) in zigzag_order(rows, cols).iter().zip(values) {
        m[(*i, *j)] = v;
    }
    m
}

/// Keeps the first `k` coefficients in zig-zag order and zeroes the rest —
/// a deterministic low-frequency-K mask (contrast with magnitude-based
/// [`crate::best_k_approximation`]).
pub fn keep_low_frequency(frame: &Matrix, k: usize) -> Matrix {
    let mut out = Matrix::zeros(frame.rows(), frame.cols());
    for (idx, (i, j)) in zigzag_order(frame.rows(), frame.cols())
        .into_iter()
        .enumerate()
    {
        if idx >= k {
            break;
        }
        out[(i, j)] = frame[(i, j)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_4x4_matches_jpeg() {
        let o = zigzag_order(4, 4);
        let expect = [
            (0, 0),
            (0, 1),
            (1, 0),
            (2, 0),
            (1, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (2, 1),
            (3, 0),
            (3, 1),
            (2, 2),
            (1, 3),
            (2, 3),
            (3, 2),
            (3, 3),
        ];
        assert_eq!(o, expect);
    }

    #[test]
    fn order_visits_every_cell_once() {
        for (r, c) in [(3, 5), (5, 3), (1, 4), (4, 1), (6, 6)] {
            let o = zigzag_order(r, c);
            assert_eq!(o.len(), r * c);
            let mut seen = vec![false; r * c];
            for (i, j) in o {
                assert!(i < r && j < c);
                assert!(!seen[i * c + j], "cell ({i},{j}) visited twice");
                seen[i * c + j] = true;
            }
        }
    }

    #[test]
    fn scan_unscan_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let v = zigzag_scan(&m);
        let back = zigzag_unscan(&v, 3, 4);
        assert_eq!(back, m);
    }

    #[test]
    fn keep_low_frequency_zeroes_tail() {
        let m = Matrix::filled(4, 4, 1.0);
        let kept = keep_low_frequency(&m, 3);
        assert_eq!(kept.sum(), 3.0);
        assert_eq!(kept[(0, 0)], 1.0);
        assert_eq!(kept[(0, 1)], 1.0);
        assert_eq!(kept[(1, 0)], 1.0);
        assert_eq!(kept[(3, 3)], 0.0);
    }

    #[test]
    fn empty_grid() {
        assert!(zigzag_order(0, 5).is_empty());
        assert!(zigzag_order(5, 0).is_empty());
    }
}
