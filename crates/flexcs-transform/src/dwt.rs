//! Orthonormal Haar discrete wavelet transform, 1-D and 2-D.
//!
//! The paper notes (Sec. 2) that "other suitable transformations, such as
//! discrete Fourier transform and discrete wavelet transform, can be
//! applied as well"; the Haar DWT lets the pipeline and the ablation
//! benches exercise an alternative sparsity basis.

use crate::error::{Result, TransformError};
use flexcs_linalg::Matrix;

const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// One level of the orthonormal Haar transform:
/// `(approx, detail) = ((a+b)/√2, (a-b)/√2)` over adjacent pairs, packed
/// approximations first.
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless the length is even and
/// positive.
pub fn haar_forward_level(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_multiple_of(2) {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "haar level requires positive even length",
        });
    }
    let half = n / 2;
    let mut out = vec![0.0; n];
    for i in 0..half {
        out[i] = (x[2 * i] + x[2 * i + 1]) * INV_SQRT2;
        out[half + i] = (x[2 * i] - x[2 * i + 1]) * INV_SQRT2;
    }
    Ok(out)
}

/// Inverse of [`haar_forward_level`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless the length is even and
/// positive.
pub fn haar_inverse_level(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_multiple_of(2) {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "haar level requires positive even length",
        });
    }
    let half = n / 2;
    let mut out = vec![0.0; n];
    for i in 0..half {
        out[2 * i] = (x[i] + x[half + i]) * INV_SQRT2;
        out[2 * i + 1] = (x[i] - x[half + i]) * INV_SQRT2;
    }
    Ok(out)
}

/// Full multi-level Haar DWT for power-of-two lengths: repeatedly
/// transforms the approximation band down to a single coefficient.
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless the length is a
/// positive power of two.
pub fn haar_forward(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "full haar requires a positive power-of-two length",
        });
    }
    let mut out = x.to_vec();
    let mut len = n;
    while len >= 2 {
        let level = haar_forward_level(&out[..len])?;
        out[..len].copy_from_slice(&level);
        len /= 2;
    }
    Ok(out)
}

/// Inverse of [`haar_forward`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless the length is a
/// positive power of two.
pub fn haar_inverse(x: &[f64]) -> Result<Vec<f64>> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(TransformError::InvalidLength {
            len: n,
            reason: "full haar requires a positive power-of-two length",
        });
    }
    let mut out = x.to_vec();
    let mut len = 2;
    while len <= n {
        let level = haar_inverse_level(&out[..len])?;
        out[..len].copy_from_slice(&level);
        len *= 2;
    }
    Ok(out)
}

/// Single-level 2-D Haar transform (rows then columns), producing the
/// standard LL/LH/HL/HH quadrant layout.
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless both dimensions are
/// even and positive.
pub fn haar2d_forward_level(frame: &Matrix) -> Result<Matrix> {
    let (rows, cols) = frame.shape();
    let mut tmp = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let t = haar_forward_level(frame.row(i))?;
        tmp.row_mut(i).copy_from_slice(&t);
    }
    let mut out = Matrix::zeros(rows, cols);
    for j in 0..cols {
        let col = tmp.col(j);
        let t = haar_forward_level(&col)?;
        for i in 0..rows {
            out[(i, j)] = t[i];
        }
    }
    Ok(out)
}

/// Inverse of [`haar2d_forward_level`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless both dimensions are
/// even and positive.
pub fn haar2d_inverse_level(frame: &Matrix) -> Result<Matrix> {
    let (rows, cols) = frame.shape();
    let mut tmp = Matrix::zeros(rows, cols);
    for j in 0..cols {
        let col = frame.col(j);
        let t = haar_inverse_level(&col)?;
        for i in 0..rows {
            tmp[(i, j)] = t[i];
        }
    }
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let t = haar_inverse_level(tmp.row(i))?;
        out.row_mut(i).copy_from_slice(&t);
    }
    Ok(out)
}

/// Full (multi-level, standard construction) 2-D Haar transform for
/// power-of-two dimensions: the complete 1-D transform is applied to
/// every row, then to every column. The result is an orthonormal basis
/// change — the alternative sparsity basis `Ψ` the paper alludes to.
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless both dimensions are
/// positive powers of two.
pub fn haar2d_full_forward(frame: &Matrix) -> Result<Matrix> {
    let (rows, cols) = frame.shape();
    let mut tmp = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let t = haar_forward(frame.row(i))?;
        tmp.row_mut(i).copy_from_slice(&t);
    }
    let mut out = Matrix::zeros(rows, cols);
    for j in 0..cols {
        let col = tmp.col(j);
        let t = haar_forward(&col)?;
        for i in 0..rows {
            out[(i, j)] = t[i];
        }
    }
    Ok(out)
}

/// Inverse of [`haar2d_full_forward`].
///
/// # Errors
///
/// Returns [`TransformError::InvalidLength`] unless both dimensions are
/// positive powers of two.
pub fn haar2d_full_inverse(coeffs: &Matrix) -> Result<Matrix> {
    let (rows, cols) = coeffs.shape();
    let mut tmp = Matrix::zeros(rows, cols);
    for j in 0..cols {
        let col = coeffs.col(j);
        let t = haar_inverse(&col)?;
        for i in 0..rows {
            tmp[(i, j)] = t[i];
        }
    }
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        let t = haar_inverse(tmp.row(i))?;
        out.row_mut(i).copy_from_slice(&t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_roundtrip() {
        let x = [4.0, 2.0, -1.0, 3.0];
        let y = haar_forward_level(&x).unwrap();
        let back = haar_inverse_level(&y).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn level_energy_preserved() {
        let x = [1.0, -2.0, 3.0, 0.5, 7.0, -1.0];
        let y = haar_forward_level(&x).unwrap();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-12);
    }

    #[test]
    fn full_roundtrip_power_of_two() {
        let x: Vec<f64> = (0..16).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let y = haar_forward(&x).unwrap();
        let back = haar_inverse(&y).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let y = haar_forward(&[3.0; 8]).unwrap();
        assert!((y[0] - 3.0 * 8.0_f64.sqrt()).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(haar_forward_level(&[1.0; 3]).is_err());
        assert!(haar_forward(&[1.0; 12]).is_err());
        assert!(haar_inverse(&[]).is_err());
    }

    #[test]
    fn haar2d_roundtrip() {
        let frame = Matrix::from_fn(4, 6, |i, j| (i as f64) * 2.0 - (j as f64));
        let y = haar2d_forward_level(&frame).unwrap();
        let back = haar2d_inverse_level(&y).unwrap();
        assert!(back.max_abs_diff(&frame).unwrap() < 1e-12);
    }

    #[test]
    fn haar2d_full_roundtrip() {
        let frame = Matrix::from_fn(8, 16, |i, j| ((i * 16 + j) as f64 * 0.13).sin());
        let c = haar2d_full_forward(&frame).unwrap();
        let back = haar2d_full_inverse(&c).unwrap();
        assert!(back.max_abs_diff(&frame).unwrap() < 1e-12);
        // Orthonormal: energy preserved.
        assert!((c.norm_fro() - frame.norm_fro()).abs() < 1e-10);
    }

    #[test]
    fn haar2d_full_constant_concentrates_in_one_coefficient() {
        let frame = Matrix::filled(8, 8, 1.0);
        let c = haar2d_full_forward(&frame).unwrap();
        assert!((c[(0, 0)] - 8.0).abs() < 1e-12);
        assert!(c.norm_l1() - c[(0, 0)].abs() < 1e-10);
    }

    #[test]
    fn haar2d_full_rejects_non_power_of_two() {
        assert!(haar2d_full_forward(&Matrix::zeros(6, 8)).is_err());
    }

    #[test]
    fn haar2d_ll_quadrant_holds_mean_energy() {
        let frame = Matrix::filled(4, 4, 1.0);
        let y = haar2d_forward_level(&frame).unwrap();
        // A constant image transforms into LL-only content.
        assert!((y[(0, 0)] - 2.0).abs() < 1e-12);
        assert!(y[(2, 2)].abs() < 1e-12);
        assert!(y[(0, 2)].abs() < 1e-12);
    }
}
