//! # flexcs-transform
//!
//! Sparsifying transforms and sparsity statistics for the flexcs stack
//! (DAC 2020 *Robust Design of Large Area Flexible Electronics via
//! Compressed Sensing* reproduction).
//!
//! The paper's pipeline represents sensor frames in the 2-D DCT basis
//! (Eqs. 3–7), measures how sparse natural body signals are there
//! (Fig. 2), and reconstructs frames by inverting the basis after L1
//! recovery. This crate provides:
//!
//! - [`DctPlan`] / [`Dct2d`]: orthonormal DCT-II and inverse for any size,
//!   plus [`fast_dct2_orthonormal`] (Lee recursion) for power-of-two
//!   lengths.
//! - [`psi_matrix`]: the dense basis Ψ of paper Eq. 4/5, with
//!   [`vectorize`]/[`devectorize`] helpers and [`mutual_coherence`].
//! - [`sparsity`] statistics: sorted magnitudes (Fig. 2a), significant
//!   coefficient counts at the paper's `1e-4` threshold (Fig. 2b),
//!   best-K approximation and the Eq. 1 measurement estimate.
//! - Haar [`dwt`] as the alternative basis the paper mentions.
//! - [`zigzag`] ordering utilities.
//!
//! ## Example
//!
//! ```
//! use flexcs_linalg::Matrix;
//! use flexcs_transform::{Dct2d, sparsity};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A smooth frame is highly compressible in the DCT domain.
//! let frame = Matrix::from_fn(16, 16, |i, j| {
//!     ((i as f64) * 0.2).sin() + ((j as f64) * 0.15).cos()
//! });
//! let coeffs = Dct2d::new(16, 16)?.forward(&frame)?;
//! let report = sparsity::analyze(&coeffs);
//! assert!(report.fraction < 0.5, "smooth frames are sparse in DCT");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod dct;
mod dft;
pub mod dwt;
mod error;
pub mod sparsity;
pub mod zigzag;

pub use basis::{devectorize, mutual_coherence, psi_matrix, vectorize};
pub use dct::{fast_dct2_orthonormal, fast_dct2_unscaled, fast_dct3_orthonormal, Dct2d, DctPlan};
pub use dft::RealFourierPlan;
pub use dwt::{haar2d_full_forward, haar2d_full_inverse};
pub use error::{Result, TransformError};
pub use sparsity::{
    analyze, best_k_approximation, k_term_relative_error, required_measurements, significant_count,
    significant_fraction, sorted_magnitudes, sparsity_for_energy, SparsityReport,
    PAPER_SIGNIFICANCE_THRESHOLD,
};
