//! Orthonormal real discrete Fourier basis.
//!
//! The paper's Sec. 2 lists the "discrete Fourier transform" among the
//! suitable sparsifying transforms. For real-valued sensor frames the
//! natural form is the *real* Fourier basis — cosine/sine pairs — which
//! is a genuine orthonormal `n x n` real matrix (unlike the complex
//! DFT), so it slots into the same recovery machinery as the DCT.

use crate::error::{Result, TransformError};
use flexcs_linalg::Matrix;
use std::f64::consts::TAU;

/// A precomputed orthonormal real-Fourier plan for a fixed length.
///
/// Basis functions (rows of the analysis matrix), for even `n`:
/// `1/√n`, then `√(2/n)·cos(2πkt/n)` and `√(2/n)·sin(2πkt/n)` for
/// `k = 1 … n/2 − 1`, and finally `cos(πt)/√n` (the Nyquist row). Odd
/// lengths omit the Nyquist row and run `k` to `(n−1)/2`.
///
/// # Examples
///
/// ```
/// use flexcs_transform::RealFourierPlan;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = RealFourierPlan::new(16)?;
/// let x: Vec<f64> = (0..16).map(|t| (t as f64 * 0.3).sin()).collect();
/// let back = plan.inverse(&plan.forward(&x)?)?;
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFourierPlan {
    n: usize,
    basis: Matrix,
}

impl RealFourierPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(TransformError::InvalidLength {
                len: 0,
                reason: "real fourier plan length must be positive",
            });
        }
        let nf = n as f64;
        let mut basis = Matrix::zeros(n, n);
        let mut row = 0;
        // DC.
        for t in 0..n {
            basis[(row, t)] = (1.0 / nf).sqrt();
        }
        row += 1;
        let k_max = if n.is_multiple_of(2) {
            n / 2 - 1
        } else {
            (n - 1) / 2
        };
        for k in 1..=k_max {
            let scale = (2.0 / nf).sqrt();
            for t in 0..n {
                basis[(row, t)] = scale * (TAU * k as f64 * t as f64 / nf).cos();
            }
            row += 1;
            for t in 0..n {
                basis[(row, t)] = scale * (TAU * k as f64 * t as f64 / nf).sin();
            }
            row += 1;
        }
        if n.is_multiple_of(2) && n > 1 {
            // Nyquist: alternating ±1/√n.
            for t in 0..n {
                basis[(row, t)] = if t % 2 == 0 { 1.0 } else { -1.0 } / nf.sqrt();
            }
            row += 1;
        }
        debug_assert_eq!(row, n);
        Ok(RealFourierPlan { n, basis })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrows the orthonormal analysis matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.basis
    }

    /// Forward transform (analysis).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] for a wrong-length
    /// input.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(TransformError::InvalidLength {
                len: x.len(),
                reason: "input length differs from plan length",
            });
        }
        Ok(self.basis.matvec(x).expect("plan is n x n"))
    }

    /// Inverse transform (synthesis).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidLength`] for a wrong-length
    /// input.
    pub fn inverse(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(TransformError::InvalidLength {
                len: x.len(),
                reason: "input length differs from plan length",
            });
        }
        Ok(self.basis.matvec_transpose(x).expect("plan is n x n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthonormal_even_and_odd() {
        for n in [8usize, 9, 16, 15] {
            let plan = RealFourierPlan::new(n).unwrap();
            let b = plan.matrix();
            let g = b.matmul(&b.transpose()).unwrap();
            assert!(
                g.max_abs_diff(&Matrix::identity(n)).unwrap() < 1e-12,
                "n = {n}"
            );
        }
    }

    #[test]
    fn pure_tone_concentrates_in_two_coefficients() {
        let n = 32;
        let plan = RealFourierPlan::new(n).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|t| (TAU * 3.0 * t as f64 / n as f64).cos())
            .collect();
        let c = plan.forward(&x).unwrap();
        let significant = c.iter().filter(|v| v.abs() > 1e-9).count();
        assert_eq!(significant, 1, "a bin-aligned cosine hits one basis row");
    }

    #[test]
    fn roundtrip_and_parseval() {
        let n = 21;
        let plan = RealFourierPlan::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|t| ((t * t) as f64 * 0.17).sin()).collect();
        let c = plan.forward(&x).unwrap();
        let back = plan.inverse(&c).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(RealFourierPlan::new(0).is_err());
        let plan = RealFourierPlan::new(4).unwrap();
        assert!(plan.forward(&[1.0; 3]).is_err());
        assert!(plan.inverse(&[1.0; 5]).is_err());
    }
}
