//! Error types for transform operations.

use std::error::Error;
use std::fmt;

/// Error produced by DCT/DWT plans and sparsity analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// An input length was unusable for the requested transform.
    InvalidLength {
        /// Offending length.
        len: usize,
        /// Why the length is invalid.
        reason: &'static str,
    },
    /// A 2-D input had the wrong shape for the plan.
    ShapeMismatch {
        /// Shape the plan accepts.
        expected: (usize, usize),
        /// Shape that was provided.
        got: (usize, usize),
    },
    /// A parameter was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::InvalidLength { len, reason } => {
                write!(f, "invalid length {len}: {reason}")
            }
            TransformError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: plan accepts {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            TransformError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TransformError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TransformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TransformError::InvalidLength {
            len: 0,
            reason: "must be positive",
        };
        assert_eq!(e.to_string(), "invalid length 0: must be positive");
        let e = TransformError::ShapeMismatch {
            expected: (4, 4),
            got: (3, 5),
        };
        assert!(e.to_string().contains("4x4"));
        assert!(e.to_string().contains("3x5"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TransformError>();
    }
}
