//! Sparsity statistics of transform-domain signals (paper Sec. 2, Fig. 2).
//!
//! The paper's core observation is that body-sensing signals keep only
//! ~50 % significant DCT coefficients (threshold `1e-4 · max`), so
//! `M ≈ K·log(N/K) ≈ N/2` compressed measurements suffice (Eq. 1). This
//! module computes exactly those statistics.

use crate::error::{Result, TransformError};
use flexcs_linalg::Matrix;

/// Relative threshold the paper uses for "significant" coefficients
/// (`coefficients ≥ 1e-4 · max(coefficients)`).
pub const PAPER_SIGNIFICANCE_THRESHOLD: f64 = 1e-4;

/// Sorted coefficient magnitudes in non-increasing order — the series
/// plotted in the paper's Fig. 2a.
pub fn sorted_magnitudes(coeffs: &Matrix) -> Vec<f64> {
    let mut mags: Vec<f64> = coeffs.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    mags
}

/// Number of significant coefficients under a relative threshold: entries
/// with `|c| >= rel_tol · max|c|` (Fig. 2b uses `rel_tol = 1e-4`).
///
/// Returns 0 for an all-zero input.
pub fn significant_count(coeffs: &Matrix, rel_tol: f64) -> usize {
    let max = coeffs.norm_max();
    if max == 0.0 {
        return 0;
    }
    let tol = rel_tol * max;
    coeffs.iter().filter(|v| v.abs() >= tol).count()
}

/// Fraction of significant coefficients (the paper's "~50 % sparsity").
pub fn significant_fraction(coeffs: &Matrix, rel_tol: f64) -> f64 {
    let n = coeffs.rows() * coeffs.cols();
    if n == 0 {
        return 0.0;
    }
    significant_count(coeffs, rel_tol) as f64 / n as f64
}

/// Best K-term approximation: keeps the `k` largest-magnitude entries and
/// zeroes the rest. This is `x_K` in the paper's error bound (Eq. 2).
pub fn best_k_approximation(coeffs: &Matrix, k: usize) -> Matrix {
    let flat = coeffs.to_flat();
    let keep = flexcs_linalg::vecops::top_k_indices(&flat, k);
    let mut mask = vec![false; flat.len()];
    for &i in &keep {
        mask[i] = true;
    }
    let cols = coeffs.cols();
    Matrix::from_fn(coeffs.rows(), cols, |i, j| {
        if mask[i * cols + j] {
            coeffs[(i, j)]
        } else {
            0.0
        }
    })
}

/// Smallest `K` such that the top-K coefficients capture at least
/// `energy_fraction` of the total energy.
///
/// # Errors
///
/// Returns [`TransformError::InvalidArgument`] unless
/// `0 < energy_fraction <= 1`.
pub fn sparsity_for_energy(coeffs: &Matrix, energy_fraction: f64) -> Result<usize> {
    if !(energy_fraction > 0.0 && energy_fraction <= 1.0) {
        return Err(TransformError::InvalidArgument(format!(
            "energy fraction must be in (0, 1], got {energy_fraction}"
        )));
    }
    let mags = sorted_magnitudes(coeffs);
    let total: f64 = mags.iter().map(|v| v * v).sum();
    if total == 0.0 {
        return Ok(0);
    }
    let mut acc = 0.0;
    for (i, m) in mags.iter().enumerate() {
        acc += m * m;
        if acc >= energy_fraction * total {
            return Ok(i + 1);
        }
    }
    Ok(mags.len())
}

/// The paper's Eq. 1 measurement estimate `M ≈ K·log₂(N/K)`.
///
/// With the paper's observed `K ≈ N/2` this evaluates to `N/2`, matching
/// the claim that ~50 % sampling suffices. Returns `N` (no compression
/// possible) when `k >= n`, and 0 when `k == 0`.
pub fn required_measurements(k: usize, n: usize) -> usize {
    if k == 0 || n == 0 {
        return 0;
    }
    if k >= n {
        return n;
    }
    let m = (k as f64) * ((n as f64) / (k as f64)).log2();
    (m.ceil() as usize).min(n)
}

/// Relative L2 error of the best K-term approximation,
/// `||x - x_K||₂ / ||x||₂` — the decay curve behind Fig. 2a.
pub fn k_term_relative_error(coeffs: &Matrix, k: usize) -> f64 {
    let total = coeffs.norm_fro();
    if total == 0.0 {
        return 0.0;
    }
    let mags = sorted_magnitudes(coeffs);
    let tail: f64 = mags.iter().skip(k).map(|v| v * v).sum();
    tail.sqrt() / total
}

/// Summary statistics for one transform-domain frame, as reported per
/// dataset in the paper's Sec. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// Total number of coefficients `N`.
    pub n: usize,
    /// Significant coefficients at the paper threshold.
    pub significant: usize,
    /// `significant / n`.
    pub fraction: f64,
    /// Eq. 1 estimate `K·log₂(N/K)`.
    pub required_measurements: usize,
    /// `required_measurements / n` — the sampling rate the signal demands.
    pub measurement_rate: f64,
}

/// Builds a [`SparsityReport`] at the paper's `1e-4` relative threshold.
pub fn analyze(coeffs: &Matrix) -> SparsityReport {
    let n = coeffs.rows() * coeffs.cols();
    let significant = significant_count(coeffs, PAPER_SIGNIFICANCE_THRESHOLD);
    let required = required_measurements(significant, n);
    SparsityReport {
        n,
        significant,
        fraction: if n == 0 {
            0.0
        } else {
            significant as f64 / n as f64
        },
        required_measurements: required,
        measurement_rate: if n == 0 {
            0.0
        } else {
            required as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs() -> Matrix {
        Matrix::from_rows(&[&[10.0, -5.0, 0.0], &[1e-6, 2.0, -1e-7]]).unwrap()
    }

    #[test]
    fn sorted_magnitudes_nonincreasing() {
        let mags = sorted_magnitudes(&coeffs());
        assert_eq!(mags[0], 10.0);
        assert_eq!(mags[1], 5.0);
        for w in mags.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn significant_count_uses_relative_threshold() {
        // max = 10, tol = 1e-3 => entries >= 0.01: {10, 5, 2}
        assert_eq!(significant_count(&coeffs(), 1e-3), 3);
        // tol small enough to include 1e-6 but not 0 or 1e-7.
        assert_eq!(significant_count(&coeffs(), 1e-8), 5);
        assert_eq!(significant_count(&Matrix::zeros(3, 3), 1e-4), 0);
    }

    #[test]
    fn significant_fraction_in_unit_interval() {
        let f = significant_fraction(&coeffs(), 1e-3);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_k_keeps_largest() {
        let a = best_k_approximation(&coeffs(), 2);
        assert_eq!(a[(0, 0)], 10.0);
        assert_eq!(a[(0, 1)], -5.0);
        assert_eq!(a[(1, 1)], 0.0);
        assert_eq!(a[(0, 2)], 0.0);
    }

    #[test]
    fn best_k_with_k_ge_n_is_identity() {
        let c = coeffs();
        assert_eq!(best_k_approximation(&c, 100), c);
    }

    #[test]
    fn sparsity_for_energy_monotone() {
        let c = coeffs();
        let k50 = sparsity_for_energy(&c, 0.5).unwrap();
        let k99 = sparsity_for_energy(&c, 0.99).unwrap();
        assert!(k50 <= k99);
        assert_eq!(sparsity_for_energy(&Matrix::zeros(2, 2), 0.9).unwrap(), 0);
        assert!(sparsity_for_energy(&c, 0.0).is_err());
        assert!(sparsity_for_energy(&c, 1.5).is_err());
    }

    #[test]
    fn eq1_matches_paper_claim_at_half_sparsity() {
        // K = N/2 => M = K log2(2) = N/2.
        let n = 1024;
        assert_eq!(required_measurements(n / 2, n), n / 2);
    }

    #[test]
    fn eq1_edge_cases() {
        assert_eq!(required_measurements(0, 100), 0);
        assert_eq!(required_measurements(100, 100), 100);
        assert_eq!(required_measurements(200, 100), 100);
        assert_eq!(required_measurements(5, 0), 0);
        // Result never exceeds N.
        assert!(required_measurements(60, 64) <= 64);
    }

    #[test]
    fn k_term_error_decreases_with_k() {
        let c = coeffs();
        let e1 = k_term_relative_error(&c, 1);
        let e2 = k_term_relative_error(&c, 2);
        let e_all = k_term_relative_error(&c, 6);
        assert!(e1 >= e2);
        assert!(e_all < 1e-12);
        assert_eq!(k_term_relative_error(&Matrix::zeros(2, 2), 1), 0.0);
    }

    #[test]
    fn analyze_builds_consistent_report() {
        let r = analyze(&coeffs());
        assert_eq!(r.n, 6);
        assert_eq!(r.significant, significant_count(&coeffs(), 1e-4));
        assert!((r.fraction * 6.0 - r.significant as f64).abs() < 1e-12);
        assert!(r.measurement_rate <= 1.0);
    }
}
