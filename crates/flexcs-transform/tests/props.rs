//! Property-based tests for the transform layer.

use flexcs_linalg::Matrix;
use flexcs_transform::{dwt, fast_dct2_orthonormal, psi_matrix, sparsity, zigzag, Dct2d, DctPlan};
use proptest::prelude::*;

fn frame_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-8.0..8.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dct1d_roundtrip(v in proptest::collection::vec(-5.0..5.0f64, 1..40)) {
        let plan = DctPlan::new(v.len()).unwrap();
        let back = plan.inverse(&plan.forward(&v).unwrap()).unwrap();
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn dct1d_linear(u in proptest::collection::vec(-5.0..5.0f64, 12), v in proptest::collection::vec(-5.0..5.0f64, 12), alpha in -3.0..3.0f64) {
        let plan = DctPlan::new(12).unwrap();
        let mix: Vec<f64> = u.iter().zip(&v).map(|(a, b)| a + alpha * b).collect();
        let lhs = plan.forward(&mix).unwrap();
        let fu = plan.forward(&u).unwrap();
        let fv = plan.forward(&v).unwrap();
        for i in 0..12 {
            prop_assert!((lhs[i] - (fu[i] + alpha * fv[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_dct_agrees_with_dense_plan(v in proptest::collection::vec(-5.0..5.0f64, 64)) {
        // DctPlan::new(64) already takes the fast kernel, so the dense
        // reference must be requested explicitly.
        let fast = fast_dct2_orthonormal(&v).unwrap();
        let dense = DctPlan::with_dense(64).unwrap().forward(&v).unwrap();
        for (a, b) in fast.iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_and_dense_plans_agree_across_lengths(seed in 0u64..1000) {
        // Powers of two exercise the Lee recursion (including the fused
        // n = 2/4 bases); 100 exercises the dense fallback selector.
        for n in [1usize, 2, 8, 64, 100, 256] {
            let v: Vec<f64> = (0..n)
                .map(|i| ((i as f64 + seed as f64) * 0.37).sin() * 5.0)
                .collect();
            let fast = DctPlan::new(n).unwrap();
            let dense = DctPlan::with_dense(n).unwrap();
            let ff = fast.forward(&v).unwrap();
            let df = dense.forward(&v).unwrap();
            for (a, b) in ff.iter().zip(&df) {
                prop_assert!((a - b).abs() < 1e-10, "forward n={}", n);
            }
            let fi = fast.inverse(&ff).unwrap();
            let di = dense.inverse(&df).unwrap();
            for (a, b) in fi.iter().zip(&di) {
                prop_assert!((a - b).abs() < 1e-10, "inverse n={}", n);
            }
            // And the fast inverse is exact against the input.
            for (a, b) in fi.iter().zip(&v) {
                prop_assert!((a - b).abs() < 1e-10, "roundtrip n={}", n);
            }
        }
    }

    #[test]
    fn dct2d_fast_agrees_with_dense_plan(frame in frame_strategy(8, 8)) {
        let fast = Dct2d::new(8, 8).unwrap();
        let dense = Dct2d::with_dense(8, 8).unwrap();
        let ff = fast.forward(&frame).unwrap();
        let df = dense.forward(&frame).unwrap();
        prop_assert!(ff.max_abs_diff(&df).unwrap() < 1e-10);
        let fi = fast.inverse(&ff).unwrap();
        prop_assert!(fi.max_abs_diff(&frame).unwrap() < 1e-10);
    }

    #[test]
    fn dct2d_parseval(frame in frame_strategy(6, 9)) {
        let plan = Dct2d::new(6, 9).unwrap();
        let coeffs = plan.forward(&frame).unwrap();
        prop_assert!((coeffs.norm_fro() - frame.norm_fro()).abs() < 1e-9 * (1.0 + frame.norm_fro()));
    }

    #[test]
    fn psi_matvec_equals_idct(frame in frame_strategy(4, 5)) {
        let psi = psi_matrix(4, 5).unwrap();
        let plan = Dct2d::new(4, 5).unwrap();
        let via_matrix = psi.matvec(&frame.to_flat()).unwrap();
        let via_plan = plan.inverse(&frame).unwrap().to_flat();
        for (a, b) in via_matrix.iter().zip(&via_plan) {
            prop_assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn haar_roundtrip_and_parseval(v in proptest::collection::vec(-5.0..5.0f64, 32)) {
        let y = dwt::haar_forward(&v).unwrap();
        let back = dwt::haar_inverse(&y).unwrap();
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-10);
        }
        let e_in: f64 = v.iter().map(|x| x * x).sum();
        let e_out: f64 = y.iter().map(|x| x * x).sum();
        prop_assert!((e_in - e_out).abs() < 1e-9 * (1.0 + e_in));
    }

    #[test]
    fn haar2d_roundtrip(frame in frame_strategy(8, 8)) {
        let y = dwt::haar2d_forward_level(&frame).unwrap();
        let back = dwt::haar2d_inverse_level(&y).unwrap();
        prop_assert!(back.max_abs_diff(&frame).unwrap() < 1e-10);
    }

    #[test]
    fn best_k_keeps_energy_order(frame in frame_strategy(5, 5), k in 1usize..25) {
        let kept = sparsity::best_k_approximation(&frame, k);
        // Energy of kept is the max over any k-subset: compare against
        // keeping the first k entries.
        let naive = {
            let mut m = frame.clone();
            let mut count = 0;
            for i in 0..5 {
                for j in 0..5 {
                    if count >= k {
                        m[(i, j)] = 0.0;
                    }
                    count += 1;
                }
            }
            m
        };
        prop_assert!(kept.norm_fro() >= naive.norm_fro() - 1e-12);
    }

    #[test]
    fn significant_count_monotone_in_tolerance(frame in frame_strategy(6, 6)) {
        let strict = sparsity::significant_count(&frame, 1e-1);
        let loose = sparsity::significant_count(&frame, 1e-6);
        prop_assert!(strict <= loose);
    }

    #[test]
    fn required_measurements_bounds(k in 0usize..200, n in 1usize..200) {
        let m = sparsity::required_measurements(k, n);
        prop_assert!(m <= n);
        if k > 0 && k < n {
            prop_assert!(m >= 1);
        }
    }

    #[test]
    fn zigzag_is_a_permutation(rows in 1usize..8, cols in 1usize..8) {
        let order = zigzag::zigzag_order(rows, cols);
        prop_assert_eq!(order.len(), rows * cols);
        let mut seen = vec![false; rows * cols];
        for (i, j) in order {
            prop_assert!(!seen[i * cols + j]);
            seen[i * cols + j] = true;
        }
    }

    #[test]
    fn zigzag_scan_roundtrip(frame in frame_strategy(4, 6)) {
        let v = zigzag::zigzag_scan(&frame);
        let back = zigzag::zigzag_unscan(&v, 4, 6);
        prop_assert_eq!(back, frame);
    }
}
