//! Property-based tests for the linear-algebra kernels.

use flexcs_linalg::{
    solve, solve_spd, vecops, Cholesky, Lu, Matrix, Qr, Rsvd, RsvdConfig, Svd, SymmetricEigen,
};
use proptest::prelude::*;

/// Strategy: matrix entries bounded away from pathological magnitude.
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

/// Strategy: well-conditioned square matrix (diagonally dominated).
fn dominant_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |mut m| {
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

/// Strategy: SPD matrix via `AᵀA + I`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |a| {
        let mut g = a.transpose().matmul(&a).expect("square");
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        g
    })
}

/// Shared body for the rsvd-vs-Jacobi shape properties: builds an
/// `m x n` rank-`r` matrix (plus ~1e-9 entrywise noise) from the drawn
/// factor entries, then checks the randomized engine against the exact
/// one-sided Jacobi kernel on the same input.
fn assert_rsvd_matches_jacobi(m: usize, n: usize, r: usize, uf: &[f64], vf: &[f64], noise: &[f64]) {
    let u = Matrix::from_vec(m, r, uf[..m * r].to_vec()).expect("sized");
    let v = Matrix::from_vec(r, n, vf[..r * n].to_vec()).expect("sized");
    let mut a = u.matmul(&v).expect("conformable factors");
    a += &Matrix::from_vec(m, n, noise.to_vec()).expect("sized");
    let exact = Svd::compute(&a).expect("jacobi svd");
    let rsvd = Rsvd::compute(&a, r, &RsvdConfig::default()).expect("rsvd");
    // Leading `r` singular values agree to 1e-8 (entries are O(1), so
    // sigma_1 is at most a few tens and both kernels resolve it to
    // working precision).
    for (j, (rs, es)) in rsvd.sigma()[..r]
        .iter()
        .zip(&exact.sigma()[..r])
        .enumerate()
    {
        assert!(
            (rs - es).abs() < 1e-8,
            "{m}x{n} rank {r} sigma[{j}]: {rs} vs {es}"
        );
    }
    // Rank r is fully captured, so the reconstruction error is bounded
    // by the injected noise mass (plus the certificate floor).
    let err = (&a - &rsvd.reconstruct()).norm_fro();
    assert!(
        err < 1e-6 * (1.0 + a.norm_fro()),
        "{m}x{n} rank {r} reconstruction error {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lu_solves_dominant_systems(a in dominant_strategy(8), b in proptest::collection::vec(-5.0..5.0f64, 8)) {
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_det_sign_flips_with_row_swap(a in dominant_strategy(5)) {
        let d1 = Lu::factor(&a).unwrap().det();
        let mut swapped = a.clone();
        for j in 0..5 {
            let tmp = swapped[(0, j)];
            swapped[(0, j)] = swapped[(1, j)];
            swapped[(1, j)] = tmp;
        }
        let d2 = Lu::factor(&swapped).unwrap().det();
        prop_assert!((d1 + d2).abs() < 1e-6 * d1.abs().max(1.0));
    }

    #[test]
    fn cholesky_matches_lu_on_spd(g in spd_strategy(6), b in proptest::collection::vec(-3.0..3.0f64, 6)) {
        let x_ch = solve_spd(&g, &b).unwrap();
        let x_lu = solve(&g, &b).unwrap();
        for (p, q) in x_ch.iter().zip(&x_lu) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_factor_reconstructs(g in spd_strategy(7)) {
        let ch = Cholesky::factor(&g).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&g).unwrap() < 1e-8 * (1.0 + g.norm_max()));
    }

    #[test]
    fn qr_q_orthonormal_r_upper(a in matrix_strategy(9, 5)) {
        let qr = Qr::factor(&a).unwrap();
        let q = qr.q_thin();
        let qtq = q.transpose().matmul(&q).unwrap();
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(5)).unwrap() < 1e-9);
        let r = qr.r();
        for i in 0..5 {
            for j in 0..i {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
        let rec = q.matmul(&r).unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-9 * (1.0 + a.norm_max()));
    }

    #[test]
    fn least_squares_residual_orthogonal_to_columns(
        a in matrix_strategy(10, 4),
        b in proptest::collection::vec(-5.0..5.0f64, 10),
    ) {
        // Skip near-rank-deficient draws.
        let qr = Qr::factor(&a).unwrap();
        let x = match qr.solve_least_squares(&b) {
            Ok(x) => x,
            Err(_) => return Ok(()),
        };
        let ax = a.matvec(&x).unwrap();
        let r = vecops::sub(&b, &ax);
        let atr = a.matvec_transpose(&r).unwrap();
        // Normal equations: Aᵀ(b − Ax) = 0.
        prop_assert!(vecops::norm_inf(&atr) < 1e-6 * (1.0 + vecops::norm2(&b)));
    }

    #[test]
    fn svd_singular_values_nonnegative_sorted(a in matrix_strategy(6, 9)) {
        let svd = Svd::compute(&a).unwrap();
        for w in svd.sigma().windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(svd.sigma().iter().all(|&s| s >= 0.0));
        // Frobenius identity: ‖A‖_F² = Σσ².
        let fro2: f64 = a.iter().map(|v| v * v).sum();
        let sig2: f64 = svd.sigma().iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sig2).abs() < 1e-7 * (1.0 + fro2));
    }

    #[test]
    fn svd_truncation_error_is_eckart_young(a in matrix_strategy(7, 7), r in 1usize..6) {
        let svd = Svd::compute(&a).unwrap();
        let ar = svd.truncated(r);
        let err = (&a - &ar).norm_fro();
        let tail: f64 = svd.sigma()[r..].iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((err - tail).abs() < 1e-7 * (1.0 + a.norm_fro()));
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in matrix_strategy(6, 6)) {
        let sym = Matrix::from_fn(6, 6, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let eig = SymmetricEigen::compute(&sym).unwrap();
        prop_assert!(eig.reconstruct().max_abs_diff(&sym).unwrap() < 1e-8 * (1.0 + sym.norm_max()));
        // Trace equals eigenvalue sum.
        let tr = sym.trace().unwrap();
        let es: f64 = eig.values().iter().sum();
        prop_assert!((tr - es).abs() < 1e-8 * (1.0 + tr.abs()));
    }

    #[test]
    fn soft_threshold_is_nonexpansive(
        v in proptest::collection::vec(-10.0..10.0f64, 12),
        w in proptest::collection::vec(-10.0..10.0f64, 12),
        t in 0.0..5.0f64,
    ) {
        let sv = vecops::soft_threshold(&v, t);
        let sw = vecops::soft_threshold(&w, t);
        let before = vecops::norm2(&vecops::sub(&v, &w));
        let after = vecops::norm2(&vecops::sub(&sv, &sw));
        prop_assert!(after <= before + 1e-12);
    }

    #[test]
    fn median_lies_within_range(v in proptest::collection::vec(-10.0..10.0f64, 1..20)) {
        let m = vecops::median(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn rsvd_matches_jacobi_on_tall_low_rank(
        r in 1usize..7,
        uf in proptest::collection::vec(-1.0..1.0f64, 24 * 6),
        vf in proptest::collection::vec(-1.0..1.0f64, 6 * 12),
        noise in proptest::collection::vec(-1e-9..1e-9f64, 24 * 12),
    ) {
        assert_rsvd_matches_jacobi(24, 12, r, &uf, &vf, &noise);
    }

    #[test]
    fn rsvd_matches_jacobi_on_wide_low_rank(
        r in 1usize..7,
        uf in proptest::collection::vec(-1.0..1.0f64, 12 * 6),
        vf in proptest::collection::vec(-1.0..1.0f64, 6 * 24),
        noise in proptest::collection::vec(-1e-9..1e-9f64, 12 * 24),
    ) {
        assert_rsvd_matches_jacobi(12, 24, r, &uf, &vf, &noise);
    }

    #[test]
    fn rsvd_matches_jacobi_on_square_low_rank(
        r in 1usize..9,
        uf in proptest::collection::vec(-1.0..1.0f64, 16 * 8),
        vf in proptest::collection::vec(-1.0..1.0f64, 8 * 16),
        noise in proptest::collection::vec(-1e-9..1e-9f64, 16 * 16),
    ) {
        assert_rsvd_matches_jacobi(16, 16, r, &uf, &vf, &noise);
    }

    #[test]
    fn rsvd_certificate_matches_direct_projection_error(a in matrix_strategy(18, 10), r in 1usize..5) {
        // U·Sigma·Vᵀ equals Q·Qᵀ·A exactly (B's SVD is lossless), so the
        // directly computed reconstruction error must agree with the
        // Frobenius-identity certificate up to its cancellation floor
        // (~1e-8·‖A‖_F).
        let rsvd = Rsvd::compute(&a, r, &RsvdConfig::default()).unwrap();
        let err = (&a - &rsvd.reconstruct()).norm_fro();
        prop_assert!((err - rsvd.residual()).abs() < 1e-5 * (1.0 + a.norm_fro()));
    }

    #[test]
    fn rsvd_same_seed_is_bit_identical(
        a in matrix_strategy(20, 14),
        r in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        // Holds regardless of the `parallel` feature: the panel fan-out
        // is bit-identical to the serial blocked kernel, and the
        // Gaussian sketch depends only on (shape, seed).
        let cfg = RsvdConfig { seed, ..RsvdConfig::default() };
        let r1 = Rsvd::compute(&a, r, &cfg).unwrap();
        let r2 = Rsvd::compute(&a, r, &cfg).unwrap();
        prop_assert_eq!(r1.sigma(), r2.sigma());
        prop_assert_eq!(r1.u().as_slice(), r2.u().as_slice());
        prop_assert_eq!(r1.v().as_slice(), r2.v().as_slice());
        prop_assert_eq!(r1.subspace().as_slice(), r2.subspace().as_slice());
    }

    #[test]
    fn top_k_indices_have_largest_magnitudes(
        v in proptest::collection::vec(-10.0..10.0f64, 15),
        k in 1usize..15,
    ) {
        let idx = vecops::top_k_indices(&v, k);
        prop_assert_eq!(idx.len(), k);
        let min_kept = idx.iter().map(|&i| v[i].abs()).fold(f64::INFINITY, f64::min);
        for (i, val) in v.iter().enumerate() {
            if !idx.contains(&i) {
                prop_assert!(val.abs() <= min_kept + 1e-12);
            }
        }
    }
}
