//! Property tests pinning every dispatched SIMD kernel to its scalar
//! reference tier.
//!
//! Contract (see `flexcs_linalg::simd`): elementwise kernels are
//! **bit-identical** to the scalar tier on every input; reductions may
//! re-associate but must agree to **≤ 1e-12 relative**. The suite runs
//! against whichever tier the process selected — under the CI
//! `FLEXCS_FORCE_SCALAR=1` leg the dispatched table *is* the scalar
//! table and the comparisons degenerate to exact self-consistency, so
//! both legs together cover both paths.
//!
//! Lengths are drawn across 0..=67 (via full-length draws sliced to
//! an independent length) to hit the empty case, the
//! sub-vector-width remainders, and full vector blocks of every tier
//! (4/8-wide AVX2, 2/4-wide NEON, 4-wide scalar unrolling).

use flexcs_linalg::simd;
use proptest::prelude::*;

const REL_TOL: f64 = 1e-12;

/// Maximum vector length drawn by the suite; each case slices its
/// full-length draws down to an independently drawn `n in 0..=67`
/// (the vendored proptest has no dependent-length combinator).
const MAX_LEN: usize = 68;

/// Strategy: one full-length bounded vector (sliced to length by cases).
fn full_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0..100.0f64, MAX_LEN)
}

fn assert_bits_eq(dispatched: &[f64], scalar: &[f64], kernel: &str) {
    assert_eq!(dispatched.len(), scalar.len(), "{kernel}: length drift");
    for (i, (d, s)) in dispatched.iter().zip(scalar).enumerate() {
        assert_eq!(
            d.to_bits(),
            s.to_bits(),
            "{kernel}[{i}]: {d:?} vs scalar {s:?}"
        );
    }
}

fn assert_rel_close(dispatched: f64, scalar: f64, kernel: &str) {
    let tol = REL_TOL * scalar.abs().max(1.0);
    assert!(
        (dispatched - scalar).abs() <= tol,
        "{kernel}: {dispatched} vs scalar {scalar} (tol {tol})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn axpy_bit_identical(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN, alpha in -10.0..10.0f64) {
        let (x, y) = (va[..n].to_vec(), vb[..n].to_vec());
        let k = simd::kernels();
        let s = simd::scalar_kernels();
        let mut yd = y.clone();
        let mut ys = y;
        (k.axpy)(alpha, &x, &mut yd);
        (s.axpy)(alpha, &x, &mut ys);
        assert_bits_eq(&yd, &ys, "axpy");
    }

    #[test]
    fn scale_bit_identical(va in full_vec(), n in 0usize..MAX_LEN, s in -10.0..10.0f64) {
        let mut a = va[..n].to_vec();
        let mut b = a.clone();
        (simd::kernels().scale)(&mut a, s);
        (simd::scalar_kernels().scale)(&mut b, s);
        assert_bits_eq(&a, &b, "scale");
    }

    #[test]
    fn sub_and_add_bit_identical(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN) {
        let (a, b) = (va[..n].to_vec(), vb[..n].to_vec());
        let k = simd::kernels();
        let s = simd::scalar_kernels();
        let n = a.len();
        let (mut od, mut os) = (vec![0.0; n], vec![0.0; n]);
        (k.sub)(&mut od, &a, &b);
        (s.sub)(&mut os, &a, &b);
        assert_bits_eq(&od, &os, "sub");
        (k.add)(&mut od, &a, &b);
        (s.add)(&mut os, &a, &b);
        assert_bits_eq(&od, &os, "add");
    }

    #[test]
    fn soft_threshold_bit_identical(va in full_vec(), n in 0usize..MAX_LEN, t in 0.0..50.0f64) {
        let mut d = va[..n].to_vec();
        let mut s = va[..n].to_vec();
        (simd::kernels().soft_threshold)(&mut d, t);
        (simd::scalar_kernels().soft_threshold)(&mut s, t);
        assert_bits_eq(&d, &s, "soft_threshold");
    }

    #[test]
    fn prox_grad_step_bit_identical(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN, step in 0.0..2.0f64, t in 0.0..10.0f64) {
        let (y, g) = (va[..n].to_vec(), vb[..n].to_vec());
        let n = y.len();
        let (mut od, mut os) = (vec![0.0; n], vec![0.0; n]);
        (simd::kernels().prox_grad_step)(&mut od, &y, &g, step, t);
        (simd::scalar_kernels().prox_grad_step)(&mut os, &y, &g, step, t);
        assert_bits_eq(&od, &os, "prox_grad_step");
    }

    #[test]
    fn momentum_bit_identical(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN, beta in 0.0..1.0f64) {
        let (xn, xo) = (va[..n].to_vec(), vb[..n].to_vec());
        let n = xn.len();
        let (mut yd, mut ys) = (vec![0.0; n], vec![0.0; n]);
        (simd::kernels().momentum)(&mut yd, &xn, &xo, beta);
        (simd::scalar_kernels().momentum)(&mut ys, &xn, &xo, beta);
        assert_bits_eq(&yd, &ys, "momentum");
    }

    #[test]
    fn butterfly_split_bit_identical(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN, inv in 0.5..20.0f64) {
        let (x, y) = (va[..n].to_vec(), vb[..n].to_vec());
        let w = x.len();
        let (mut ad, mut bd) = (vec![0.0; w], vec![0.0; w]);
        let (mut as_, mut bs) = (vec![0.0; w], vec![0.0; w]);
        (simd::kernels().butterfly_split)(&mut ad, &mut bd, &x, &y, inv);
        (simd::scalar_kernels().butterfly_split)(&mut as_, &mut bs, &x, &y, inv);
        assert_bits_eq(&ad, &as_, "butterfly_split alpha");
        assert_bits_eq(&bd, &bs, "butterfly_split beta");
    }

    #[test]
    fn butterfly_merge_bit_identical(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN, c in -2.0..2.0f64) {
        let (alpha, beta) = (va[..n].to_vec(), vb[..n].to_vec());
        let w = alpha.len();
        let (mut td, mut bd) = (vec![0.0; w], vec![0.0; w]);
        let (mut ts, mut bs) = (vec![0.0; w], vec![0.0; w]);
        (simd::kernels().butterfly_merge)(&mut td, &mut bd, &alpha, &beta, c);
        (simd::scalar_kernels().butterfly_merge)(&mut ts, &mut bs, &alpha, &beta, c);
        assert_bits_eq(&td, &ts, "butterfly_merge top");
        assert_bits_eq(&bd, &bs, "butterfly_merge bottom");
    }

    #[test]
    fn sub_add_scaled_bit_identical(va in full_vec(), vb in full_vec(), vc in full_vec(), n in 0usize..MAX_LEN, k in -5.0..5.0f64) {
        let (a, b, c) = (va[..n].to_vec(), vb[..n].to_vec(), vc[..n].to_vec());
        let n = a.len();
        let (mut od, mut os) = (vec![0.0; n], vec![0.0; n]);
        (simd::kernels().sub_add_scaled)(&mut od, &a, &b, &c, k);
        (simd::scalar_kernels().sub_add_scaled)(&mut os, &a, &b, &c, k);
        assert_bits_eq(&od, &os, "sub_add_scaled");
    }

    #[test]
    fn sub_add_scaled_shrink_bit_identical(va in full_vec(), vb in full_vec(), vc in full_vec(), n in 0usize..MAX_LEN, k in -5.0..5.0f64, thr in 0.0..10.0f64) {
        let (a, b, c) = (va[..n].to_vec(), vb[..n].to_vec(), vc[..n].to_vec());
        let n = a.len();
        let (mut od, mut os) = (vec![0.0; n], vec![0.0; n]);
        (simd::kernels().sub_add_scaled_shrink)(&mut od, &a, &b, &c, k, thr);
        (simd::scalar_kernels().sub_add_scaled_shrink)(&mut os, &a, &b, &c, k, thr);
        assert_bits_eq(&od, &os, "sub_add_scaled_shrink");
    }

    #[test]
    fn dot_within_reduction_tolerance(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN) {
        let (a, b) = (va[..n].to_vec(), vb[..n].to_vec());
        let d = (simd::kernels().dot)(&a, &b);
        let s = (simd::scalar_kernels().dot)(&a, &b);
        assert_rel_close(d, s, "dot");
    }

    #[test]
    fn diff_norm2_sq_within_reduction_tolerance(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN) {
        let (a, b) = (va[..n].to_vec(), vb[..n].to_vec());
        let d = (simd::kernels().diff_norm2_sq)(&a, &b);
        let s = (simd::scalar_kernels().diff_norm2_sq)(&a, &b);
        assert_rel_close(d, s, "diff_norm2_sq");
    }

    #[test]
    fn dual_update_residual_consistent(va in full_vec(), vb in full_vec(), vc in full_vec(), n in 0usize..MAX_LEN, mu in 0.1..10.0f64) {
        let (d, l, s) = (va[..n].to_vec(), vb[..n].to_vec(), vc[..n].to_vec());
        // y starts from d (any equal-length buffer works); the updated
        // dual is elementwise (bit-identical), the returned Σz² is a
        // reduction (≤ 1e-12 relative).
        let mut yd = d.clone();
        let mut ys = d.clone();
        let zd = (simd::kernels().dual_update_residual_sq)(&mut yd, &d, &l, &s, mu);
        let zs = (simd::scalar_kernels().dual_update_residual_sq)(&mut ys, &d, &l, &s, mu);
        assert_bits_eq(&yd, &ys, "dual_update y");
        assert_rel_close(zd, zs, "dual_update residual");
    }

    #[test]
    fn diff_norm2_sq_matches_staged_dot_within_tier(va in full_vec(), vb in full_vec(), n in 0usize..MAX_LEN) {
        let (a, b) = (va[..n].to_vec(), vb[..n].to_vec());
        // Cross-kernel invariant solvers rely on: the fused reduction is
        // bit-identical to dot(d, d) of the materialized difference
        // *within the selected tier* (both tiers share one accumulation
        // structure per table).
        let k = simd::kernels();
        let mut d = vec![0.0; a.len()];
        (k.sub)(&mut d, &a, &b);
        let fused = (k.diff_norm2_sq)(&a, &b);
        let staged = (k.dot)(&d, &d);
        prop_assert_eq!(fused.to_bits(), staged.to_bits());
    }
}
