//! Free functions on `&[f64]` vectors.
//!
//! Solver inner loops (ISTA/FISTA, ADMM, OMP) operate on plain slices for
//! zero-overhead interop with [`crate::Matrix`] storage. These helpers keep
//! that code readable without committing to a heavier `Vector` newtype.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (largest absolute value).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Elementwise sum, returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b`, returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Soft-thresholding (shrinkage) operator applied entrywise:
/// `sign(v) * max(|v| - t, 0)`.
///
/// This is the proximal operator of `t * ||.||_1` and the core of
/// ISTA/FISTA and ADMM L1 solvers.
pub fn soft_threshold(a: &[f64], t: f64) -> Vec<f64> {
    a.iter()
        .map(|&v| {
            if v > t {
                v - t
            } else if v < -t {
                v + t
            } else {
                0.0
            }
        })
        .collect()
}

/// In-place soft thresholding; see [`soft_threshold`].
pub fn soft_threshold_mut(a: &mut [f64], t: f64) {
    for v in a.iter_mut() {
        *v = if *v > t {
            *v - t
        } else if *v < -t {
            *v + t
        } else {
            0.0
        };
    }
}

/// Indices of the `k` largest-magnitude entries (unsorted order).
///
/// If `k >= a.len()`, returns all indices.
pub fn top_k_indices(a: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    if k >= a.len() {
        return idx;
    }
    idx.select_nth_unstable_by(k, |&i, &j| {
        a[j].abs()
            .partial_cmp(&a[i].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

/// Number of entries with magnitude strictly above `tol`.
pub fn count_above(a: &[f64], tol: f64) -> usize {
    a.iter().filter(|v| v.abs() > tol).count()
}

/// Median of a slice (average of middle two for even lengths).
///
/// Returns `f64::NAN` for an empty slice.
pub fn median(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut v = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample standard deviation (0.0 for fewer than two entries).
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    let var = a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (a.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, -4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        let mut c = [1.0, -2.0];
        scale(&mut c, -3.0);
        assert_eq!(c, [-3.0, 6.0]);
    }

    #[test]
    fn soft_threshold_shrinks_toward_zero() {
        let v = [3.0, -0.5, 0.5, -3.0, 1.0];
        let s = soft_threshold(&v, 1.0);
        assert_eq!(s, vec![2.0, 0.0, 0.0, -2.0, 0.0]);
        let mut w = v;
        soft_threshold_mut(&mut w, 1.0);
        assert_eq!(w.to_vec(), s);
    }

    #[test]
    fn top_k_selects_largest_magnitudes() {
        let v = [0.1, -5.0, 3.0, 0.0, 4.0];
        let mut idx = top_k_indices(&v, 2);
        idx.sort_unstable();
        assert_eq!(idx, vec![1, 4]);
        assert_eq!(top_k_indices(&v, 10).len(), 5);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn statistics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(
            (std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935299395).abs() < 1e-12
        );
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn count_above_threshold() {
        assert_eq!(count_above(&[0.1, -0.5, 2.0], 0.4), 2);
    }
}
