//! Free functions on `&[f64]` vectors.
//!
//! Solver inner loops (ISTA/FISTA, ADMM, OMP) operate on plain slices for
//! zero-overhead interop with [`crate::Matrix`] storage. These helpers keep
//! that code readable without committing to a heavier `Vector` newtype.
//!
//! The hot kernels (axpy, dot, fused prox/momentum steps, shrinkage)
//! delegate to the runtime-dispatched tier in [`crate::simd`]:
//! elementwise results are bit-identical across tiers, reductions agree
//! to ≤ 1e-12 relative (see the tolerance policy there).

use crate::simd;

/// Dot product of two equal-length slices.
///
/// Dispatched reduction (see [`crate::simd`]): vector tiers re-associate
/// and agree with the scalar reference to ≤ 1e-12 relative.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    (simd::kernels().dot)(a, b)
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (largest absolute value).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x` in place.
///
/// Dispatched elementwise kernel (see [`crate::simd`]); results are
/// bit-identical to the scalar reference loop on every tier.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    (simd::kernels().axpy)(alpha, x, y)
}

/// Scales a slice in place (dispatched elementwise kernel,
/// bit-identical across tiers).
pub fn scale(a: &mut [f64], s: f64) {
    (simd::kernels().scale)(a, s)
}

/// Elementwise sum, returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b`, returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise difference `a - b` written into `out` (resized to fit) —
/// the allocation-free counterpart of [`sub`] for solver inner loops.
///
/// # Panics
///
/// Panics if the input slices have different lengths.
pub fn sub_into(out: &mut Vec<f64>, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "sub_into: length mismatch");
    // In the solver hot loops `out` is already the right length, so this
    // resize is a no-op and the dispatched kernel writes in one pass.
    out.resize(a.len(), 0.0);
    (simd::kernels().sub)(out, a, b);
}

/// `‖a − b‖₂` without materializing the difference vector.
///
/// Dispatched reduction: every tier accumulates `(a_i − b_i)²` with the
/// exact same structure as its [`dot`] kernel, so the result stays
/// bit-identical to `norm2(&sub(a, b))` — solvers rely on that for
/// reproducible stopping decisions. Across tiers the value agrees to
/// ≤ 1e-12 relative (see [`crate::simd`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn diff_norm2(a: &[f64], b: &[f64]) -> f64 {
    (simd::kernels().diff_norm2_sq)(a, b).sqrt()
}

/// Fused proximal-gradient step: `out[i] = soft(y[i] − step·g[i], t)`,
/// the ISTA/FISTA inner-loop kernel (gradient descent at the momentum
/// point followed by shrinkage) in one pass with no temporaries.
///
/// Per-element arithmetic matches the open-coded
/// `y − step·g` + [`soft_threshold_mut`] sequence exactly, so results
/// are bit-identical on every tier (dispatched elementwise kernel, see
/// [`crate::simd`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn prox_grad_step_into(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64) {
    (simd::kernels().prox_grad_step)(out, y, g, step, t)
}

/// FISTA momentum extrapolation:
/// `y[i] = xn[i] + beta·(xn[i] − xo[i])` with no temporaries
/// (dispatched elementwise kernel, bit-identical across tiers).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn momentum_into(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64) {
    (simd::kernels().momentum)(y, xn, xo, beta)
}

/// Soft-thresholding (shrinkage) operator applied entrywise:
/// `sign(v) * max(|v| - t, 0)`.
///
/// This is the proximal operator of `t * ||.||_1` and the core of
/// ISTA/FISTA and ADMM L1 solvers.
pub fn soft_threshold(a: &[f64], t: f64) -> Vec<f64> {
    let mut out = a.to_vec();
    soft_threshold_mut(&mut out, t);
    out
}

/// In-place soft thresholding; see [`soft_threshold`].
///
/// Dispatched elementwise kernel: every result bit matches the scalar
/// reference loop on every tier (vector tiers mirror the branch
/// priority with a blend sequence).
pub fn soft_threshold_mut(a: &mut [f64], t: f64) {
    (simd::kernels().soft_threshold)(a, t)
}

/// Indices of the `k` largest-magnitude entries (unsorted order).
///
/// If `k >= a.len()`, returns all indices.
pub fn top_k_indices(a: &[f64], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    top_k_indices_into(a, k, &mut idx);
    idx
}

/// [`top_k_indices`] into a caller-provided buffer (cleared first), so
/// repeated selections reuse the index storage. Results are identical.
pub fn top_k_indices_into(a: &[f64], k: usize, idx: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..a.len());
    if k >= a.len() {
        return;
    }
    idx.select_nth_unstable_by(k, |&i, &j| {
        a[j].abs()
            .partial_cmp(&a[i].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
}

/// Number of entries with magnitude strictly above `tol`.
pub fn count_above(a: &[f64], tol: f64) -> usize {
    a.iter().filter(|v| v.abs() > tol).count()
}

/// Median of a slice (average of middle two for even lengths).
///
/// Returns `f64::NAN` for an empty slice.
pub fn median(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut v = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample standard deviation (0.0 for fewer than two entries).
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    let var = a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (a.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, -4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        let mut c = [1.0, -2.0];
        scale(&mut c, -3.0);
        assert_eq!(c, [-3.0, 6.0]);
    }

    #[test]
    fn soft_threshold_shrinks_toward_zero() {
        let v = [3.0, -0.5, 0.5, -3.0, 1.0];
        let s = soft_threshold(&v, 1.0);
        assert_eq!(s, vec![2.0, 0.0, 0.0, -2.0, 0.0]);
        let mut w = v;
        soft_threshold_mut(&mut w, 1.0);
        assert_eq!(w.to_vec(), s);
    }

    #[test]
    fn top_k_selects_largest_magnitudes() {
        let v = [0.1, -5.0, 3.0, 0.0, 4.0];
        let mut idx = top_k_indices(&v, 2);
        idx.sort_unstable();
        assert_eq!(idx, vec![1, 4]);
        assert_eq!(top_k_indices(&v, 10).len(), 5);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn statistics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(
            (std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935299395).abs() < 1e-12
        );
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn count_above_threshold() {
        assert_eq!(count_above(&[0.1, -0.5, 2.0], 0.4), 2);
    }

    /// Deterministic pseudo-random fill exercising both the unrolled
    /// chunks and the remainder lanes (lengths not divisible by 4).
    fn ramp(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64) * 0.7 + phase).sin() * 3.0)
            .collect()
    }

    #[test]
    fn sub_into_matches_sub() {
        for n in [0, 1, 3, 4, 7, 16, 33] {
            let a = ramp(n, 0.1);
            let b = ramp(n, 1.9);
            let mut out = vec![f64::NAN; 2]; // stale content must be discarded
            sub_into(&mut out, &a, &b);
            assert_eq!(out, sub(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn diff_norm2_bit_identical_to_sub_then_norm2() {
        for n in [0, 1, 3, 4, 7, 16, 33, 100] {
            let a = ramp(n, 0.3);
            let b = ramp(n, 2.7);
            let fused = diff_norm2(&a, &b);
            let reference = norm2(&sub(&a, &b));
            assert_eq!(fused.to_bits(), reference.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn prox_grad_step_bit_identical_to_open_coded() {
        for n in [0, 1, 3, 4, 7, 16, 33] {
            let y = ramp(n, 0.5);
            let g = ramp(n, 1.1);
            let (step, t) = (0.37, 0.25);
            let mut fused = vec![0.0; n];
            prox_grad_step_into(&mut fused, &y, &g, step, t);
            let mut reference: Vec<f64> = y.iter().zip(&g).map(|(yi, gi)| yi - step * gi).collect();
            soft_threshold_mut(&mut reference, t);
            for (a, b) in fused.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn momentum_into_matches_open_coded() {
        for n in [0, 1, 3, 4, 7, 16, 33] {
            let xn = ramp(n, 0.2);
            let xo = ramp(n, 1.4);
            let beta = 0.61;
            let mut y = vec![0.0; n];
            momentum_into(&mut y, &xn, &xo, beta);
            let reference: Vec<f64> = xn
                .iter()
                .zip(&xo)
                .map(|(a, b)| a + beta * (a - b))
                .collect();
            for (a, b) in y.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn axpy_unrolled_handles_remainders() {
        for n in [0, 1, 3, 4, 5, 8, 11] {
            let x = ramp(n, 0.9);
            let mut y = ramp(n, 2.2);
            let reference: Vec<f64> = y.iter().zip(&x).map(|(yi, xi)| yi + 1.75 * xi).collect();
            axpy(1.75, &x, &mut y);
            assert_eq!(y, reference, "n = {n}");
        }
    }
}
