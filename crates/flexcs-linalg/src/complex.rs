//! Minimal complex arithmetic and complex linear solves.
//!
//! The circuit simulator's small-signal AC analysis solves
//! `(G + jωC)·x = b` per frequency point; this module provides the complex
//! scalar type and a dense complex LU solver for exactly that job.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::Complex;
///
/// let j = Complex::new(0.0, 1.0);
/// assert_eq!(j * j, Complex::new(-1.0, 0.0));
/// assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn abs_squared(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns an infinite value for zero input, matching `f64` semantics.
    pub fn recip(self) -> Complex {
        let d = self.abs_squared();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Magnitude in decibels (`20·log10 |z|`).
    pub fn abs_db(self) -> f64 {
        20.0 * self.abs().log10()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division is deliberately multiply-by-reciprocal: recip() carries
    // the numerically safe |rhs|² scaling in one place.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Dense complex square matrix in row-major order, only as featureful as
/// AC analysis requires.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        ComplexMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize) -> Complex {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, i: usize, j: usize, v: Complex) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] = v;
    }

    /// Adds `v` to entry `(i, j)` — the natural operation for MNA stamps.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn add_at(&mut self, i: usize, j: usize, v: Complex) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] += v;
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a wrong-length rhs or
    /// [`LinalgError::Singular`] when a pivot vanishes.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "complex solve: expected rhs of length {n}, got {}",
                b.len()
            )));
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            // Pivot on largest magnitude.
            let mut p = k;
            let mut pmax = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-300 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                x.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let m = a[i * n + k] / pivot;
                if m == Complex::ZERO {
                    continue;
                }
                for j in k..n {
                    let akj = a[k * n + j];
                    a[i * n + j] = a[i * n + j] - m * akj;
                }
                x[i] = x[i] - m * x[k];
            }
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s = s - a[i * n + j] * x[j];
            }
            x[i] = s / a[i * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(0.0, 2.0);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((Complex::from_real(10.0).abs_db() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn solve_identity() {
        let mut m = ComplexMatrix::zeros(2);
        m.set(0, 0, Complex::ONE);
        m.set(1, 1, Complex::ONE);
        let x = m
            .solve(&[Complex::new(2.0, 1.0), Complex::new(0.0, -3.0)])
            .unwrap();
        assert!((x[0] - Complex::new(2.0, 1.0)).abs() < 1e-14);
        assert!((x[1] - Complex::new(0.0, -3.0)).abs() < 1e-14);
    }

    #[test]
    fn solve_known_complex_system() {
        // (1+j) x = 2 -> x = 1 - j
        let mut m = ComplexMatrix::zeros(1);
        m.set(0, 0, Complex::new(1.0, 1.0));
        let x = m.solve(&[Complex::from_real(2.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, -1.0)).abs() < 1e-14);
    }

    #[test]
    fn solve_with_pivoting() {
        let mut m = ComplexMatrix::zeros(2);
        m.set(0, 1, Complex::ONE);
        m.set(1, 0, Complex::ONE);
        let x = m
            .solve(&[Complex::from_real(3.0), Complex::from_real(5.0)])
            .unwrap();
        assert!((x[0] - Complex::from_real(5.0)).abs() < 1e-14);
        assert!((x[1] - Complex::from_real(3.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let m = ComplexMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[Complex::ZERO, Complex::ZERO]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
