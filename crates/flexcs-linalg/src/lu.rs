//! LU factorization with partial pivoting.
//!
//! Used for general square solves throughout the stack, most notably the
//! circuit simulator's Newton iterations, where the MNA Jacobian is a small
//! dense matrix re-factored every step.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, Lu};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation (+1.0 or -1.0), used for determinants.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot is (numerically) zero.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < f64::MIN_POSITIVE * 16.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "lu solve: expected rhs of length {n}, got {}",
                b.len()
            )));
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit lower factor.
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Backward substitution with upper factor.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B` has the wrong
    /// number of rows.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "lu solve_matrix: expected {n} rows, got {}",
                b.rows()
            )));
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve failures (cannot normally occur after a successful
    /// factorization).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// One-shot convenience: solves `A·x = b` by LU factorization.
///
/// # Errors
///
/// See [`Lu::factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]).unwrap();
        let x = solve(&a, &[4.0, 5.0, 6.0]).unwrap();
        // Solution: x = [6, 15, -23]
        assert!((x[0] - 6.0).abs() < 1e-12);
        assert!((x[1] - 15.0).abs() < 1e-12);
        assert!((x[2] + 23.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_with_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((Lu::factor(&b).unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 6.0], &[2.0, 4.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(
            x.max_abs_diff(&Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap())
                .unwrap()
                < 1e-12
        );
    }

    #[test]
    fn solve_rejects_bad_rhs_len() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn random_roundtrip() {
        // Deterministic pseudo-random matrix via a simple LCG to avoid a
        // dev-dependency here.
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let n = 12;
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
        let xs: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let b = a.matvec(&xs).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&xs) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
