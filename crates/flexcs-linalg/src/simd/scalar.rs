//! Portable scalar reference tier.
//!
//! These are the historical `vecops`/`matrix`/DCT/RPCA inner loops,
//! retained verbatim as the semantic baseline every vectorized tier is
//! validated against: elementwise kernels must reproduce these bit for
//! bit, reductions to ≤ 1e-12 relative (see the module docs in
//! [`super`]). The four-lane `chunks_exact` unrolling is part of the
//! reference semantics — per-element arithmetic is unchanged by it —
//! and also lets the autovectorizer emit decent code on targets with no
//! hand-written tier.

/// `y += alpha * x` (reference for [`super::Kernels::axpy`]).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yk, xk) in yc.by_ref().zip(xc.by_ref()) {
        yk[0] += alpha * xk[0];
        yk[1] += alpha * xk[1];
        yk[2] += alpha * xk[2];
        yk[3] += alpha * xk[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// `a *= s` entrywise (reference for [`super::Kernels::scale`]).
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// `out = a - b` entrywise (reference for [`super::Kernels::sub`]).
pub fn sub(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    assert_eq!(out.len(), a.len(), "sub: length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// `out = a + b` entrywise (reference for [`super::Kernels::add`]).
pub fn add(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    assert_eq!(out.len(), a.len(), "add: length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Dot product (reference for [`super::Kernels::dot`]): strict
/// index-order accumulation from the `Sum for f64` identity `-0.0`.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `Σ (a_i − b_i)²` (reference for [`super::Kernels::diff_norm2_sq`]).
///
/// Accumulates strictly in index order from `-0.0`, so the result is
/// bit-identical to [`dot`] of the materialized difference with itself.
pub fn diff_norm2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "diff_norm2_sq: length mismatch");
    // -0.0 is `Sum for f64`'s identity; starting there keeps even the
    // empty case bit-identical to `dot(&sub(a, b), &sub(a, b))`.
    let mut s = -0.0;
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ak, bk) in ac.by_ref().zip(bc.by_ref()) {
        let d0 = ak[0] - bk[0];
        s += d0 * d0;
        let d1 = ak[1] - bk[1];
        s += d1 * d1;
        let d2 = ak[2] - bk[2];
        s += d2 * d2;
        let d3 = ak[3] - bk[3];
        s += d3 * d3;
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Soft-threshold shrinkage `sign(v)·max(|v| − t, 0)`.
#[inline(always)]
pub fn shrink(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

/// In-place entrywise soft threshold (reference for
/// [`super::Kernels::soft_threshold`]).
pub fn soft_threshold(a: &mut [f64], t: f64) {
    let mut chunks = a.chunks_exact_mut(4);
    for c in chunks.by_ref() {
        c[0] = shrink(c[0], t);
        c[1] = shrink(c[1], t);
        c[2] = shrink(c[2], t);
        c[3] = shrink(c[3], t);
    }
    for v in chunks.into_remainder() {
        *v = shrink(*v, t);
    }
}

/// Fused proximal-gradient step `out[i] = shrink(y[i] − step·g[i], t)`
/// (reference for [`super::Kernels::prox_grad_step`]).
pub fn prox_grad_step(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64) {
    assert_eq!(out.len(), y.len(), "prox_grad_step: length mismatch");
    assert_eq!(out.len(), g.len(), "prox_grad_step: length mismatch");
    let mut oc = out.chunks_exact_mut(4);
    let mut yc = y.chunks_exact(4);
    let mut gc = g.chunks_exact(4);
    for ((ok, yk), gk) in oc.by_ref().zip(yc.by_ref()).zip(gc.by_ref()) {
        ok[0] = shrink(yk[0] - step * gk[0], t);
        ok[1] = shrink(yk[1] - step * gk[1], t);
        ok[2] = shrink(yk[2] - step * gk[2], t);
        ok[3] = shrink(yk[3] - step * gk[3], t);
    }
    for ((o, yi), gi) in oc
        .into_remainder()
        .iter_mut()
        .zip(yc.remainder())
        .zip(gc.remainder())
    {
        *o = shrink(yi - step * gi, t);
    }
}

/// FISTA momentum `y[i] = xn[i] + beta·(xn[i] − xo[i])` (reference for
/// [`super::Kernels::momentum`]).
pub fn momentum(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64) {
    assert_eq!(y.len(), xn.len(), "momentum: length mismatch");
    assert_eq!(y.len(), xo.len(), "momentum: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut nc = xn.chunks_exact(4);
    let mut oc = xo.chunks_exact(4);
    for ((yk, nk), ok) in yc.by_ref().zip(nc.by_ref()).zip(oc.by_ref()) {
        yk[0] = nk[0] + beta * (nk[0] - ok[0]);
        yk[1] = nk[1] + beta * (nk[1] - ok[1]);
        yk[2] = nk[2] + beta * (nk[2] - ok[2]);
        yk[3] = nk[3] + beta * (nk[3] - ok[3]);
    }
    for ((yi, ni), oi) in yc
        .into_remainder()
        .iter_mut()
        .zip(nc.remainder())
        .zip(oc.remainder())
    {
        *yi = ni + beta * (ni - oi);
    }
}

/// DCT butterfly split `alpha = x + y`, `beta = (x − y)·inv` (reference
/// for [`super::Kernels::butterfly_split`]): the lane loop of the
/// multi-lane Lee forward recursion.
pub fn butterfly_split(alpha: &mut [f64], beta: &mut [f64], x: &[f64], y: &[f64], inv: f64) {
    let w = alpha.len();
    assert_eq!(beta.len(), w, "butterfly_split: length mismatch");
    assert_eq!(x.len(), w, "butterfly_split: length mismatch");
    assert_eq!(y.len(), w, "butterfly_split: length mismatch");
    for j in 0..w {
        alpha[j] = x[j] + y[j];
        beta[j] = (x[j] - y[j]) * inv;
    }
}

/// DCT inverse butterfly merge `top = 0.5·(alpha + c·beta)`,
/// `bottom = 0.5·(alpha − c·beta)` with `c = twice_cos` (reference for
/// [`super::Kernels::butterfly_merge`]): the lane loop of the
/// multi-lane Lee inverse recursion.
pub fn butterfly_merge(
    top: &mut [f64],
    bottom: &mut [f64],
    alpha: &[f64],
    beta: &[f64],
    twice_cos: f64,
) {
    let w = top.len();
    assert_eq!(bottom.len(), w, "butterfly_merge: length mismatch");
    assert_eq!(alpha.len(), w, "butterfly_merge: length mismatch");
    assert_eq!(beta.len(), w, "butterfly_merge: length mismatch");
    for j in 0..w {
        let diff = twice_cos * beta[j];
        top[j] = 0.5 * (alpha[j] + diff);
        bottom[j] = 0.5 * (alpha[j] - diff);
    }
}

/// Fused RPCA L-update target `out = (a − b) + c·k` (reference for
/// [`super::Kernels::sub_add_scaled`]).
pub fn sub_add_scaled(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64) {
    let n = out.len();
    assert_eq!(a.len(), n, "sub_add_scaled: length mismatch");
    assert_eq!(b.len(), n, "sub_add_scaled: length mismatch");
    assert_eq!(c.len(), n, "sub_add_scaled: length mismatch");
    for idx in 0..n {
        out[idx] = (a[idx] - b[idx]) + c[idx] * k;
    }
}

/// Fused RPCA S-update `out = shrink((a − b) + c·k, thr)` (reference
/// for [`super::Kernels::sub_add_scaled_shrink`]).
pub fn sub_add_scaled_shrink(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64, thr: f64) {
    let n = out.len();
    assert_eq!(a.len(), n, "sub_add_scaled_shrink: length mismatch");
    assert_eq!(b.len(), n, "sub_add_scaled_shrink: length mismatch");
    assert_eq!(c.len(), n, "sub_add_scaled_shrink: length mismatch");
    for idx in 0..n {
        let v = (a[idx] - b[idx]) + c[idx] * k;
        out[idx] = shrink(v, thr);
    }
}

/// Fused RPCA dual update `y += mu·z` with `z = d − l − s`, returning
/// `Σ z²` (reference for [`super::Kernels::dual_update_residual_sq`]):
/// strict index-order accumulation from `0.0`.
pub fn dual_update_residual_sq(y: &mut [f64], d: &[f64], l: &[f64], s: &[f64], mu: f64) -> f64 {
    let n = y.len();
    assert_eq!(d.len(), n, "dual_update_residual_sq: length mismatch");
    assert_eq!(l.len(), n, "dual_update_residual_sq: length mismatch");
    assert_eq!(s.len(), n, "dual_update_residual_sq: length mismatch");
    let mut z2 = 0.0;
    for idx in 0..n {
        let z = d[idx] - l[idx] - s[idx];
        y[idx] += mu * z;
        z2 += z * z;
    }
    z2
}
