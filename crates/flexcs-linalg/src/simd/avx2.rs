//! x86_64 AVX2+FMA kernel tier.
//!
//! Every public entry point is a safe wrapper that checks slice lengths
//! and then calls a `#[target_feature(enable = "avx2,fma")]` inner
//! function. The wrappers are only ever reachable through the kernel
//! table in [`super`], which selects this tier exclusively after
//! `is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")`
//! succeeds at process start, so the target-feature precondition holds
//! at every call site.
//!
//! Numerical contract (see the tolerance policy in [`super`]):
//!
//! - **Elementwise kernels** use explicit `_mm256_mul_pd` +
//!   `_mm256_add_pd`/`_mm256_sub_pd` sequences — never fused
//!   multiply-add — so every lane performs exactly the scalar tier's
//!   rounding sequence and results are bit-identical to
//!   [`super::scalar`].
//! - **Reductions** (`dot`, `diff_norm2_sq`, the dual-update residual)
//!   run four/eight-wide FMA accumulators and therefore re-associate;
//!   they agree with the scalar tier to ≤ 1e-12 relative. `dot` and
//!   `diff_norm2_sq` share one accumulation structure, so
//!   `diff_norm2_sq(a, b)` stays bit-identical to `dot(d, d)` of the
//!   materialized difference *within this tier*.
//! - Soft-threshold branches are mirrored with a blend sequence whose
//!   last write corresponds to the scalar `v > t` arm, reproducing the
//!   scalar branch priority bit for bit (including `t < 0` and NaN
//!   inputs).
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// `y += alpha * x`, bit-identical to the scalar tier.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { axpy_inner(alpha, x, y) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_inner(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = y.len();
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let va = _mm256_set1_pd(alpha);
    let mut i = 0;
    // SAFETY: i + 4 <= n == x.len() == y.len(); loads/stores stay in
    // bounds and are unaligned-tolerant (`loadu`/`storeu`).
    while i + 4 <= n {
        let vx = _mm256_loadu_pd(xp.add(i));
        let vy = _mm256_loadu_pd(yp.add(i));
        // mul + add (not FMA) to match the scalar rounding sequence.
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
        i += 4;
    }
    while i < n {
        *yp.add(i) += alpha * *xp.add(i);
        i += 1;
    }
}

/// `a *= s`, bit-identical to the scalar tier.
pub fn scale(a: &mut [f64], s: f64) {
    // SAFETY: AVX2+FMA verified at tier selection.
    unsafe { scale_inner(a, s) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn scale_inner(a: &mut [f64], s: f64) {
    let n = a.len();
    let ap = a.as_mut_ptr();
    let vs = _mm256_set1_pd(s);
    let mut i = 0;
    // SAFETY: i + 4 <= n; in-bounds unaligned access.
    while i + 4 <= n {
        let v = _mm256_loadu_pd(ap.add(i));
        _mm256_storeu_pd(ap.add(i), _mm256_mul_pd(v, vs));
        i += 4;
    }
    while i < n {
        *ap.add(i) *= s;
        i += 1;
    }
}

/// `out = a - b`, bit-identical to the scalar tier.
pub fn sub(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    assert_eq!(out.len(), a.len(), "sub: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { sub_inner(out, a, b) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sub_inner(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len();
    let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    // SAFETY: i + 4 <= n for all three equal-length slices.
    while i + 4 <= n {
        let va = _mm256_loadu_pd(ap.add(i));
        let vb = _mm256_loadu_pd(bp.add(i));
        _mm256_storeu_pd(op.add(i), _mm256_sub_pd(va, vb));
        i += 4;
    }
    while i < n {
        *op.add(i) = *ap.add(i) - *bp.add(i);
        i += 1;
    }
}

/// `out = a + b`, bit-identical to the scalar tier.
pub fn add(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    assert_eq!(out.len(), a.len(), "add: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { add_inner(out, a, b) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn add_inner(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len();
    let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    // SAFETY: i + 4 <= n for all three equal-length slices.
    while i + 4 <= n {
        let va = _mm256_loadu_pd(ap.add(i));
        let vb = _mm256_loadu_pd(bp.add(i));
        _mm256_storeu_pd(op.add(i), _mm256_add_pd(va, vb));
        i += 4;
    }
    while i < n {
        *op.add(i) = *ap.add(i) + *bp.add(i);
        i += 1;
    }
}

/// Horizontal sum of a 256-bit accumulator in a fixed order:
/// `(l0 + l2) + (l1 + l3)`. Shared by every reduction so their
/// association order is mutually consistent.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(acc: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd(acc, 1);
    let pair = _mm_add_pd(lo, hi);
    _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair))
}

/// Dot product with two four-lane FMA accumulators (re-associated
/// reduction; ≤ 1e-12 relative vs the scalar tier).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { dot_inner(a, b) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_inner(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    // SAFETY: i + 8 <= n on both equal-length slices.
    while i + 8 <= n {
        let a0 = _mm256_loadu_pd(ap.add(i));
        let b0 = _mm256_loadu_pd(bp.add(i));
        acc0 = _mm256_fmadd_pd(a0, b0, acc0);
        let a1 = _mm256_loadu_pd(ap.add(i + 4));
        let b1 = _mm256_loadu_pd(bp.add(i + 4));
        acc1 = _mm256_fmadd_pd(a1, b1, acc1);
        i += 8;
    }
    if i + 4 <= n {
        let a0 = _mm256_loadu_pd(ap.add(i));
        let b0 = _mm256_loadu_pd(bp.add(i));
        acc0 = _mm256_fmadd_pd(a0, b0, acc0);
        i += 4;
    }
    let mut s = hsum(_mm256_add_pd(acc0, acc1));
    while i < n {
        s += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    s
}

/// `Σ (a_i − b_i)²` with the same accumulator structure as [`dot`], so
/// the fused form matches `dot(d, d)` of the materialized difference
/// bit for bit within this tier (re-associated vs scalar, ≤ 1e-12).
pub fn diff_norm2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "diff_norm2_sq: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { diff_norm2_sq_inner(a, b) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn diff_norm2_sq_inner(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    // SAFETY: i + 8 <= n on both equal-length slices.
    while i + 8 <= n {
        let d0 = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        let d1 = _mm256_sub_pd(
            _mm256_loadu_pd(ap.add(i + 4)),
            _mm256_loadu_pd(bp.add(i + 4)),
        );
        acc1 = _mm256_fmadd_pd(d1, d1, acc1);
        i += 8;
    }
    if i + 4 <= n {
        let d0 = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        i += 4;
    }
    let mut s = hsum(_mm256_add_pd(acc0, acc1));
    while i < n {
        let d = *ap.add(i) - *bp.add(i);
        s += d * d;
        i += 1;
    }
    s
}

/// Four-lane soft threshold mirroring the scalar branch priority: start
/// from zero, blend in the `v < -t` arm, then let the `v > t` arm
/// overwrite — identical to `if v > t {v-t} else if v < -t {v+t} else
/// {0}` for every input, including `t < 0` (both masks set: the `v > t`
/// arm wins, as in the scalar chain) and NaN (neither mask set: 0).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn shrink_pd(v: __m256d, t: __m256d, neg_t: __m256d) -> __m256d {
    let pos = _mm256_cmp_pd::<_CMP_GT_OQ>(v, t);
    let neg = _mm256_cmp_pd::<_CMP_LT_OQ>(v, neg_t);
    let r = _mm256_blendv_pd(_mm256_setzero_pd(), _mm256_add_pd(v, t), neg);
    _mm256_blendv_pd(r, _mm256_sub_pd(v, t), pos)
}

/// In-place entrywise soft threshold, bit-identical to the scalar tier.
pub fn soft_threshold(a: &mut [f64], t: f64) {
    // SAFETY: AVX2+FMA verified at tier selection.
    unsafe { soft_threshold_inner(a, t) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn soft_threshold_inner(a: &mut [f64], t: f64) {
    let n = a.len();
    let ap = a.as_mut_ptr();
    let vt = _mm256_set1_pd(t);
    let vnt = _mm256_set1_pd(-t);
    let mut i = 0;
    // SAFETY: i + 4 <= n; in-bounds unaligned access.
    while i + 4 <= n {
        let v = _mm256_loadu_pd(ap.add(i));
        _mm256_storeu_pd(ap.add(i), shrink_pd(v, vt, vnt));
        i += 4;
    }
    while i < n {
        *ap.add(i) = super::scalar::shrink(*ap.add(i), t);
        i += 1;
    }
}

/// Fused proximal-gradient step, bit-identical to the scalar tier
/// (`y − step·g` as mul-then-sub, then the shrink blend).
pub fn prox_grad_step(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64) {
    assert_eq!(out.len(), y.len(), "prox_grad_step: length mismatch");
    assert_eq!(out.len(), g.len(), "prox_grad_step: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { prox_grad_step_inner(out, y, g, step, t) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn prox_grad_step_inner(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64) {
    let n = out.len();
    let (op, yp, gp) = (out.as_mut_ptr(), y.as_ptr(), g.as_ptr());
    let vs = _mm256_set1_pd(step);
    let vt = _mm256_set1_pd(t);
    let vnt = _mm256_set1_pd(-t);
    let mut i = 0;
    // SAFETY: i + 4 <= n on all three equal-length slices.
    while i + 4 <= n {
        let vy = _mm256_loadu_pd(yp.add(i));
        let vg = _mm256_loadu_pd(gp.add(i));
        let v = _mm256_sub_pd(vy, _mm256_mul_pd(vs, vg));
        _mm256_storeu_pd(op.add(i), shrink_pd(v, vt, vnt));
        i += 4;
    }
    while i < n {
        *op.add(i) = super::scalar::shrink(*yp.add(i) - step * *gp.add(i), t);
        i += 1;
    }
}

/// FISTA momentum extrapolation, bit-identical to the scalar tier.
pub fn momentum(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64) {
    assert_eq!(y.len(), xn.len(), "momentum: length mismatch");
    assert_eq!(y.len(), xo.len(), "momentum: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { momentum_inner(y, xn, xo, beta) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn momentum_inner(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64) {
    let n = y.len();
    let (yp, np, op) = (y.as_mut_ptr(), xn.as_ptr(), xo.as_ptr());
    let vb = _mm256_set1_pd(beta);
    let mut i = 0;
    // SAFETY: i + 4 <= n on all three equal-length slices.
    while i + 4 <= n {
        let vn = _mm256_loadu_pd(np.add(i));
        let vo = _mm256_loadu_pd(op.add(i));
        let d = _mm256_sub_pd(vn, vo);
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(vn, _mm256_mul_pd(vb, d)));
        i += 4;
    }
    while i < n {
        let (ni, oi) = (*np.add(i), *op.add(i));
        *yp.add(i) = ni + beta * (ni - oi);
        i += 1;
    }
}

/// DCT butterfly split lane loop, bit-identical to the scalar tier.
pub fn butterfly_split(alpha: &mut [f64], beta: &mut [f64], x: &[f64], y: &[f64], inv: f64) {
    let w = alpha.len();
    assert_eq!(beta.len(), w, "butterfly_split: length mismatch");
    assert_eq!(x.len(), w, "butterfly_split: length mismatch");
    assert_eq!(y.len(), w, "butterfly_split: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { butterfly_split_inner(alpha, beta, x, y, inv) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn butterfly_split_inner(
    alpha: &mut [f64],
    beta: &mut [f64],
    x: &[f64],
    y: &[f64],
    inv: f64,
) {
    let w = alpha.len();
    let (aptr, bptr, xp, yp) = (
        alpha.as_mut_ptr(),
        beta.as_mut_ptr(),
        x.as_ptr(),
        y.as_ptr(),
    );
    let vi = _mm256_set1_pd(inv);
    let mut j = 0;
    // SAFETY: j + 4 <= w on all four equal-length slices.
    while j + 4 <= w {
        let vx = _mm256_loadu_pd(xp.add(j));
        let vy = _mm256_loadu_pd(yp.add(j));
        _mm256_storeu_pd(aptr.add(j), _mm256_add_pd(vx, vy));
        _mm256_storeu_pd(bptr.add(j), _mm256_mul_pd(_mm256_sub_pd(vx, vy), vi));
        j += 4;
    }
    while j < w {
        let (xv, yv) = (*xp.add(j), *yp.add(j));
        *aptr.add(j) = xv + yv;
        *bptr.add(j) = (xv - yv) * inv;
        j += 1;
    }
}

/// DCT inverse butterfly merge lane loop, bit-identical to the scalar
/// tier.
pub fn butterfly_merge(
    top: &mut [f64],
    bottom: &mut [f64],
    alpha: &[f64],
    beta: &[f64],
    twice_cos: f64,
) {
    let w = top.len();
    assert_eq!(bottom.len(), w, "butterfly_merge: length mismatch");
    assert_eq!(alpha.len(), w, "butterfly_merge: length mismatch");
    assert_eq!(beta.len(), w, "butterfly_merge: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { butterfly_merge_inner(top, bottom, alpha, beta, twice_cos) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn butterfly_merge_inner(
    top: &mut [f64],
    bottom: &mut [f64],
    alpha: &[f64],
    beta: &[f64],
    twice_cos: f64,
) {
    let w = top.len();
    let (tp, bp, ap, btp) = (
        top.as_mut_ptr(),
        bottom.as_mut_ptr(),
        alpha.as_ptr(),
        beta.as_ptr(),
    );
    let vc = _mm256_set1_pd(twice_cos);
    let vh = _mm256_set1_pd(0.5);
    let mut j = 0;
    // SAFETY: j + 4 <= w on all four equal-length slices.
    while j + 4 <= w {
        let va = _mm256_loadu_pd(ap.add(j));
        let diff = _mm256_mul_pd(vc, _mm256_loadu_pd(btp.add(j)));
        _mm256_storeu_pd(tp.add(j), _mm256_mul_pd(vh, _mm256_add_pd(va, diff)));
        _mm256_storeu_pd(bp.add(j), _mm256_mul_pd(vh, _mm256_sub_pd(va, diff)));
        j += 4;
    }
    while j < w {
        let diff = twice_cos * *btp.add(j);
        let av = *ap.add(j);
        *tp.add(j) = 0.5 * (av + diff);
        *bp.add(j) = 0.5 * (av - diff);
        j += 1;
    }
}

/// Fused RPCA L-update target `out = (a − b) + c·k`, bit-identical to
/// the scalar tier.
pub fn sub_add_scaled(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64) {
    let n = out.len();
    assert_eq!(a.len(), n, "sub_add_scaled: length mismatch");
    assert_eq!(b.len(), n, "sub_add_scaled: length mismatch");
    assert_eq!(c.len(), n, "sub_add_scaled: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { sub_add_scaled_inner(out, a, b, c, k) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sub_add_scaled_inner(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64) {
    let n = out.len();
    let (op, ap, bp, cp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr(), c.as_ptr());
    let vk = _mm256_set1_pd(k);
    let mut i = 0;
    // SAFETY: i + 4 <= n on all four equal-length slices.
    while i + 4 <= n {
        let d = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        let s = _mm256_mul_pd(_mm256_loadu_pd(cp.add(i)), vk);
        _mm256_storeu_pd(op.add(i), _mm256_add_pd(d, s));
        i += 4;
    }
    while i < n {
        *op.add(i) = (*ap.add(i) - *bp.add(i)) + *cp.add(i) * k;
        i += 1;
    }
}

/// Fused RPCA S-update `out = shrink((a − b) + c·k, thr)`, bit-identical
/// to the scalar tier.
pub fn sub_add_scaled_shrink(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64, thr: f64) {
    let n = out.len();
    assert_eq!(a.len(), n, "sub_add_scaled_shrink: length mismatch");
    assert_eq!(b.len(), n, "sub_add_scaled_shrink: length mismatch");
    assert_eq!(c.len(), n, "sub_add_scaled_shrink: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { sub_add_scaled_shrink_inner(out, a, b, c, k, thr) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sub_add_scaled_shrink_inner(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    c: &[f64],
    k: f64,
    thr: f64,
) {
    let n = out.len();
    let (op, ap, bp, cp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr(), c.as_ptr());
    let vk = _mm256_set1_pd(k);
    let vt = _mm256_set1_pd(thr);
    let vnt = _mm256_set1_pd(-thr);
    let mut i = 0;
    // SAFETY: i + 4 <= n on all four equal-length slices.
    while i + 4 <= n {
        let d = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        let v = _mm256_add_pd(d, _mm256_mul_pd(_mm256_loadu_pd(cp.add(i)), vk));
        _mm256_storeu_pd(op.add(i), shrink_pd(v, vt, vnt));
        i += 4;
    }
    while i < n {
        let v = (*ap.add(i) - *bp.add(i)) + *cp.add(i) * k;
        *op.add(i) = super::scalar::shrink(v, thr);
        i += 1;
    }
}

/// Fused RPCA dual update `y += mu·z`, `z = d − l − s`, returning `Σ z²`
/// (elementwise part bit-identical; the returned sum re-associates,
/// ≤ 1e-12 relative vs the scalar tier).
pub fn dual_update_residual_sq(y: &mut [f64], d: &[f64], l: &[f64], s: &[f64], mu: f64) -> f64 {
    let n = y.len();
    assert_eq!(d.len(), n, "dual_update_residual_sq: length mismatch");
    assert_eq!(l.len(), n, "dual_update_residual_sq: length mismatch");
    assert_eq!(s.len(), n, "dual_update_residual_sq: length mismatch");
    // SAFETY: AVX2+FMA verified at tier selection; lengths checked.
    unsafe { dual_update_residual_sq_inner(y, d, l, s, mu) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dual_update_residual_sq_inner(
    y: &mut [f64],
    d: &[f64],
    l: &[f64],
    s: &[f64],
    mu: f64,
) -> f64 {
    let n = y.len();
    let (yp, dp, lp, sp) = (y.as_mut_ptr(), d.as_ptr(), l.as_ptr(), s.as_ptr());
    let vm = _mm256_set1_pd(mu);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    // SAFETY: i + 4 <= n on all four equal-length slices.
    while i + 4 <= n {
        let z = _mm256_sub_pd(
            _mm256_sub_pd(_mm256_loadu_pd(dp.add(i)), _mm256_loadu_pd(lp.add(i))),
            _mm256_loadu_pd(sp.add(i)),
        );
        let vy = _mm256_loadu_pd(yp.add(i));
        // mul + add (not FMA) so the y update matches scalar exactly.
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(vy, _mm256_mul_pd(vm, z)));
        acc = _mm256_fmadd_pd(z, z, acc);
        i += 4;
    }
    let mut z2 = hsum(acc);
    while i < n {
        let z = *dp.add(i) - *lp.add(i) - *sp.add(i);
        *yp.add(i) += mu * z;
        z2 += z * z;
        i += 1;
    }
    z2
}
