//! aarch64 NEON kernel tier (2-wide `f64`).
//!
//! Mirrors the AVX2 tier's structure and numerical contract: safe
//! length-checking wrappers over `#[target_feature(enable = "neon")]`
//! inner functions, only reachable through the kernel table in
//! [`super`] after `is_aarch64_feature_detected!("neon")` succeeds.
//!
//! - Elementwise kernels use separate `vmulq_f64` + `vaddq_f64`/
//!   `vsubq_f64` (never `vfmaq_f64`) so every lane performs the scalar
//!   tier's exact rounding sequence — bit-identical results.
//! - Reductions (`dot`, `diff_norm2_sq`, the dual-update residual) use
//!   two 2-lane `vfmaq_f64` accumulators (four elements per iteration)
//!   with a fixed horizontal-sum order, re-associating vs scalar within
//!   the documented ≤ 1e-12 relative tolerance; `dot` and
//!   `diff_norm2_sq` share one accumulation structure so the fused form
//!   matches `dot(d, d)` bit for bit within this tier.
//! - The soft-threshold blend applies the `v < -t` arm first and lets
//!   the `v > t` arm overwrite, reproducing the scalar branch priority
//!   for every input (including `t < 0` and NaN).
#![allow(unsafe_code)]

use std::arch::aarch64::*;

/// `y += alpha * x`, bit-identical to the scalar tier.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { axpy_inner(alpha, x, y) }
}

#[target_feature(enable = "neon")]
unsafe fn axpy_inner(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = y.len();
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let va = vdupq_n_f64(alpha);
    let mut i = 0;
    // SAFETY: i + 2 <= n on both equal-length slices.
    while i + 2 <= n {
        let vx = vld1q_f64(xp.add(i));
        let vy = vld1q_f64(yp.add(i));
        // mul + add (not fused) to match the scalar rounding sequence.
        vst1q_f64(yp.add(i), vaddq_f64(vy, vmulq_f64(va, vx)));
        i += 2;
    }
    while i < n {
        *yp.add(i) += alpha * *xp.add(i);
        i += 1;
    }
}

/// `a *= s`, bit-identical to the scalar tier.
pub fn scale(a: &mut [f64], s: f64) {
    // SAFETY: NEON verified at tier selection.
    unsafe { scale_inner(a, s) }
}

#[target_feature(enable = "neon")]
unsafe fn scale_inner(a: &mut [f64], s: f64) {
    let n = a.len();
    let ap = a.as_mut_ptr();
    let vs = vdupq_n_f64(s);
    let mut i = 0;
    // SAFETY: i + 2 <= n; in-bounds access.
    while i + 2 <= n {
        vst1q_f64(ap.add(i), vmulq_f64(vld1q_f64(ap.add(i)), vs));
        i += 2;
    }
    while i < n {
        *ap.add(i) *= s;
        i += 1;
    }
}

/// `out = a - b`, bit-identical to the scalar tier.
pub fn sub(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    assert_eq!(out.len(), a.len(), "sub: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { sub_inner(out, a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn sub_inner(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len();
    let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    // SAFETY: i + 2 <= n on all three equal-length slices.
    while i + 2 <= n {
        vst1q_f64(
            op.add(i),
            vsubq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))),
        );
        i += 2;
    }
    while i < n {
        *op.add(i) = *ap.add(i) - *bp.add(i);
        i += 1;
    }
}

/// `out = a + b`, bit-identical to the scalar tier.
pub fn add(out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    assert_eq!(out.len(), a.len(), "add: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { add_inner(out, a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn add_inner(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len();
    let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
    let mut i = 0;
    // SAFETY: i + 2 <= n on all three equal-length slices.
    while i + 2 <= n {
        vst1q_f64(
            op.add(i),
            vaddq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))),
        );
        i += 2;
    }
    while i < n {
        *op.add(i) = *ap.add(i) + *bp.add(i);
        i += 1;
    }
}

/// Horizontal sum of `acc0 + acc1` in a fixed order, shared by every
/// reduction in this tier.
#[target_feature(enable = "neon")]
unsafe fn hsum(acc0: float64x2_t, acc1: float64x2_t) -> f64 {
    let pair = vaddq_f64(acc0, acc1);
    vgetq_lane_f64::<0>(pair) + vgetq_lane_f64::<1>(pair)
}

/// Dot product with two 2-lane fused accumulators (re-associated
/// reduction; ≤ 1e-12 relative vs the scalar tier).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { dot_inner(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn dot_inner(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0;
    // SAFETY: i + 4 <= n on both equal-length slices.
    while i + 4 <= n {
        acc0 = vfmaq_f64(acc0, vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        acc1 = vfmaq_f64(acc1, vld1q_f64(ap.add(i + 2)), vld1q_f64(bp.add(i + 2)));
        i += 4;
    }
    if i + 2 <= n {
        acc0 = vfmaq_f64(acc0, vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        i += 2;
    }
    let mut s = hsum(acc0, acc1);
    while i < n {
        s += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    s
}

/// `Σ (a_i − b_i)²` with the same accumulator structure as [`dot`]
/// (re-associated vs scalar, ≤ 1e-12; bit-identical to `dot(d, d)`
/// within this tier).
pub fn diff_norm2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "diff_norm2_sq: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { diff_norm2_sq_inner(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn diff_norm2_sq_inner(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0;
    // SAFETY: i + 4 <= n on both equal-length slices.
    while i + 4 <= n {
        let d0 = vsubq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        acc0 = vfmaq_f64(acc0, d0, d0);
        let d1 = vsubq_f64(vld1q_f64(ap.add(i + 2)), vld1q_f64(bp.add(i + 2)));
        acc1 = vfmaq_f64(acc1, d1, d1);
        i += 4;
    }
    if i + 2 <= n {
        let d0 = vsubq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        acc0 = vfmaq_f64(acc0, d0, d0);
        i += 2;
    }
    let mut s = hsum(acc0, acc1);
    while i < n {
        let d = *ap.add(i) - *bp.add(i);
        s += d * d;
        i += 1;
    }
    s
}

/// Two-lane soft threshold mirroring the scalar branch priority: blend
/// in the `v < -t` arm first, then let the `v > t` arm overwrite.
#[target_feature(enable = "neon")]
unsafe fn shrink_f64x2(v: float64x2_t, t: float64x2_t, neg_t: float64x2_t) -> float64x2_t {
    let pos = vcgtq_f64(v, t);
    let neg = vcltq_f64(v, neg_t);
    let r = vbslq_f64(neg, vaddq_f64(v, t), vdupq_n_f64(0.0));
    vbslq_f64(pos, vsubq_f64(v, t), r)
}

/// In-place entrywise soft threshold, bit-identical to the scalar tier.
pub fn soft_threshold(a: &mut [f64], t: f64) {
    // SAFETY: NEON verified at tier selection.
    unsafe { soft_threshold_inner(a, t) }
}

#[target_feature(enable = "neon")]
unsafe fn soft_threshold_inner(a: &mut [f64], t: f64) {
    let n = a.len();
    let ap = a.as_mut_ptr();
    let vt = vdupq_n_f64(t);
    let vnt = vdupq_n_f64(-t);
    let mut i = 0;
    // SAFETY: i + 2 <= n; in-bounds access.
    while i + 2 <= n {
        vst1q_f64(ap.add(i), shrink_f64x2(vld1q_f64(ap.add(i)), vt, vnt));
        i += 2;
    }
    while i < n {
        *ap.add(i) = super::scalar::shrink(*ap.add(i), t);
        i += 1;
    }
}

/// Fused proximal-gradient step, bit-identical to the scalar tier.
pub fn prox_grad_step(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64) {
    assert_eq!(out.len(), y.len(), "prox_grad_step: length mismatch");
    assert_eq!(out.len(), g.len(), "prox_grad_step: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { prox_grad_step_inner(out, y, g, step, t) }
}

#[target_feature(enable = "neon")]
unsafe fn prox_grad_step_inner(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64) {
    let n = out.len();
    let (op, yp, gp) = (out.as_mut_ptr(), y.as_ptr(), g.as_ptr());
    let vs = vdupq_n_f64(step);
    let vt = vdupq_n_f64(t);
    let vnt = vdupq_n_f64(-t);
    let mut i = 0;
    // SAFETY: i + 2 <= n on all three equal-length slices.
    while i + 2 <= n {
        let v = vsubq_f64(vld1q_f64(yp.add(i)), vmulq_f64(vs, vld1q_f64(gp.add(i))));
        vst1q_f64(op.add(i), shrink_f64x2(v, vt, vnt));
        i += 2;
    }
    while i < n {
        *op.add(i) = super::scalar::shrink(*yp.add(i) - step * *gp.add(i), t);
        i += 1;
    }
}

/// FISTA momentum extrapolation, bit-identical to the scalar tier.
pub fn momentum(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64) {
    assert_eq!(y.len(), xn.len(), "momentum: length mismatch");
    assert_eq!(y.len(), xo.len(), "momentum: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { momentum_inner(y, xn, xo, beta) }
}

#[target_feature(enable = "neon")]
unsafe fn momentum_inner(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64) {
    let n = y.len();
    let (yp, np, op) = (y.as_mut_ptr(), xn.as_ptr(), xo.as_ptr());
    let vb = vdupq_n_f64(beta);
    let mut i = 0;
    // SAFETY: i + 2 <= n on all three equal-length slices.
    while i + 2 <= n {
        let vn = vld1q_f64(np.add(i));
        let d = vsubq_f64(vn, vld1q_f64(op.add(i)));
        vst1q_f64(yp.add(i), vaddq_f64(vn, vmulq_f64(vb, d)));
        i += 2;
    }
    while i < n {
        let (ni, oi) = (*np.add(i), *op.add(i));
        *yp.add(i) = ni + beta * (ni - oi);
        i += 1;
    }
}

/// DCT butterfly split lane loop, bit-identical to the scalar tier.
pub fn butterfly_split(alpha: &mut [f64], beta: &mut [f64], x: &[f64], y: &[f64], inv: f64) {
    let w = alpha.len();
    assert_eq!(beta.len(), w, "butterfly_split: length mismatch");
    assert_eq!(x.len(), w, "butterfly_split: length mismatch");
    assert_eq!(y.len(), w, "butterfly_split: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { butterfly_split_inner(alpha, beta, x, y, inv) }
}

#[target_feature(enable = "neon")]
unsafe fn butterfly_split_inner(
    alpha: &mut [f64],
    beta: &mut [f64],
    x: &[f64],
    y: &[f64],
    inv: f64,
) {
    let w = alpha.len();
    let (aptr, bptr, xp, yp) = (
        alpha.as_mut_ptr(),
        beta.as_mut_ptr(),
        x.as_ptr(),
        y.as_ptr(),
    );
    let vi = vdupq_n_f64(inv);
    let mut j = 0;
    // SAFETY: j + 2 <= w on all four equal-length slices.
    while j + 2 <= w {
        let vx = vld1q_f64(xp.add(j));
        let vy = vld1q_f64(yp.add(j));
        vst1q_f64(aptr.add(j), vaddq_f64(vx, vy));
        vst1q_f64(bptr.add(j), vmulq_f64(vsubq_f64(vx, vy), vi));
        j += 2;
    }
    while j < w {
        let (xv, yv) = (*xp.add(j), *yp.add(j));
        *aptr.add(j) = xv + yv;
        *bptr.add(j) = (xv - yv) * inv;
        j += 1;
    }
}

/// DCT inverse butterfly merge lane loop, bit-identical to the scalar
/// tier.
pub fn butterfly_merge(
    top: &mut [f64],
    bottom: &mut [f64],
    alpha: &[f64],
    beta: &[f64],
    twice_cos: f64,
) {
    let w = top.len();
    assert_eq!(bottom.len(), w, "butterfly_merge: length mismatch");
    assert_eq!(alpha.len(), w, "butterfly_merge: length mismatch");
    assert_eq!(beta.len(), w, "butterfly_merge: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { butterfly_merge_inner(top, bottom, alpha, beta, twice_cos) }
}

#[target_feature(enable = "neon")]
unsafe fn butterfly_merge_inner(
    top: &mut [f64],
    bottom: &mut [f64],
    alpha: &[f64],
    beta: &[f64],
    twice_cos: f64,
) {
    let w = top.len();
    let (tp, bp, ap, btp) = (
        top.as_mut_ptr(),
        bottom.as_mut_ptr(),
        alpha.as_ptr(),
        beta.as_ptr(),
    );
    let vc = vdupq_n_f64(twice_cos);
    let vh = vdupq_n_f64(0.5);
    let mut j = 0;
    // SAFETY: j + 2 <= w on all four equal-length slices.
    while j + 2 <= w {
        let va = vld1q_f64(ap.add(j));
        let diff = vmulq_f64(vc, vld1q_f64(btp.add(j)));
        vst1q_f64(tp.add(j), vmulq_f64(vh, vaddq_f64(va, diff)));
        vst1q_f64(bp.add(j), vmulq_f64(vh, vsubq_f64(va, diff)));
        j += 2;
    }
    while j < w {
        let diff = twice_cos * *btp.add(j);
        let av = *ap.add(j);
        *tp.add(j) = 0.5 * (av + diff);
        *bp.add(j) = 0.5 * (av - diff);
        j += 1;
    }
}

/// Fused RPCA L-update target `out = (a − b) + c·k`, bit-identical to
/// the scalar tier.
pub fn sub_add_scaled(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64) {
    let n = out.len();
    assert_eq!(a.len(), n, "sub_add_scaled: length mismatch");
    assert_eq!(b.len(), n, "sub_add_scaled: length mismatch");
    assert_eq!(c.len(), n, "sub_add_scaled: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { sub_add_scaled_inner(out, a, b, c, k) }
}

#[target_feature(enable = "neon")]
unsafe fn sub_add_scaled_inner(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64) {
    let n = out.len();
    let (op, ap, bp, cp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr(), c.as_ptr());
    let vk = vdupq_n_f64(k);
    let mut i = 0;
    // SAFETY: i + 2 <= n on all four equal-length slices.
    while i + 2 <= n {
        let d = vsubq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        let s = vmulq_f64(vld1q_f64(cp.add(i)), vk);
        vst1q_f64(op.add(i), vaddq_f64(d, s));
        i += 2;
    }
    while i < n {
        *op.add(i) = (*ap.add(i) - *bp.add(i)) + *cp.add(i) * k;
        i += 1;
    }
}

/// Fused RPCA S-update `out = shrink((a − b) + c·k, thr)`, bit-identical
/// to the scalar tier.
pub fn sub_add_scaled_shrink(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64], k: f64, thr: f64) {
    let n = out.len();
    assert_eq!(a.len(), n, "sub_add_scaled_shrink: length mismatch");
    assert_eq!(b.len(), n, "sub_add_scaled_shrink: length mismatch");
    assert_eq!(c.len(), n, "sub_add_scaled_shrink: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { sub_add_scaled_shrink_inner(out, a, b, c, k, thr) }
}

#[target_feature(enable = "neon")]
unsafe fn sub_add_scaled_shrink_inner(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    c: &[f64],
    k: f64,
    thr: f64,
) {
    let n = out.len();
    let (op, ap, bp, cp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr(), c.as_ptr());
    let vk = vdupq_n_f64(k);
    let vt = vdupq_n_f64(thr);
    let vnt = vdupq_n_f64(-thr);
    let mut i = 0;
    // SAFETY: i + 2 <= n on all four equal-length slices.
    while i + 2 <= n {
        let d = vsubq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
        let v = vaddq_f64(d, vmulq_f64(vld1q_f64(cp.add(i)), vk));
        vst1q_f64(op.add(i), shrink_f64x2(v, vt, vnt));
        i += 2;
    }
    while i < n {
        let v = (*ap.add(i) - *bp.add(i)) + *cp.add(i) * k;
        *op.add(i) = super::scalar::shrink(v, thr);
        i += 1;
    }
}

/// Fused RPCA dual update `y += mu·z`, `z = d − l − s`, returning `Σ z²`
/// (elementwise part bit-identical; returned sum re-associates,
/// ≤ 1e-12 relative vs the scalar tier).
pub fn dual_update_residual_sq(y: &mut [f64], d: &[f64], l: &[f64], s: &[f64], mu: f64) -> f64 {
    let n = y.len();
    assert_eq!(d.len(), n, "dual_update_residual_sq: length mismatch");
    assert_eq!(l.len(), n, "dual_update_residual_sq: length mismatch");
    assert_eq!(s.len(), n, "dual_update_residual_sq: length mismatch");
    // SAFETY: NEON verified at tier selection; lengths checked.
    unsafe { dual_update_residual_sq_inner(y, d, l, s, mu) }
}

#[target_feature(enable = "neon")]
unsafe fn dual_update_residual_sq_inner(
    y: &mut [f64],
    d: &[f64],
    l: &[f64],
    s: &[f64],
    mu: f64,
) -> f64 {
    let n = y.len();
    let (yp, dp, lp, sp) = (y.as_mut_ptr(), d.as_ptr(), l.as_ptr(), s.as_ptr());
    let vm = vdupq_n_f64(mu);
    let mut acc = vdupq_n_f64(0.0);
    let mut i = 0;
    // SAFETY: i + 2 <= n on all four equal-length slices.
    while i + 2 <= n {
        let z = vsubq_f64(
            vsubq_f64(vld1q_f64(dp.add(i)), vld1q_f64(lp.add(i))),
            vld1q_f64(sp.add(i)),
        );
        // mul + add (not fused) so the y update matches scalar exactly.
        vst1q_f64(yp.add(i), vaddq_f64(vld1q_f64(yp.add(i)), vmulq_f64(vm, z)));
        acc = vfmaq_f64(acc, z, z);
        i += 2;
    }
    let mut z2 = vgetq_lane_f64::<0>(acc) + vgetq_lane_f64::<1>(acc);
    while i < n {
        let z = *dp.add(i) - *lp.add(i) - *sp.add(i);
        *yp.add(i) += mu * z;
        z2 += z * z;
        i += 1;
    }
    z2
}
