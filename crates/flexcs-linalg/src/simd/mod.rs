//! Runtime-dispatched SIMD micro-kernel layer for the decode hot path.
//!
//! Every hot inner loop of the decode stack — the `vecops` fused
//! kernels, the blocked-matmul / matvec panels, the Lee-DCT butterfly
//! lane loops, and the RPCA shrinkage/residual updates — funnels
//! through the [`Kernels`] table returned by [`kernels`]. The table is
//! selected exactly once per process (a [`OnceLock`]) from:
//!
//! 1. **`FLEXCS_FORCE_SCALAR`** — if set to anything other than
//!    `""`/`"0"`/`"false"`, the portable [`scalar`] tier is used
//!    regardless of CPU features (for A/B testing both paths on one
//!    host).
//! 2. **x86_64 AVX2+FMA** — selected when
//!    `is_x86_feature_detected!("avx2")` and `("fma")` both pass.
//! 3. **aarch64 NEON** — selected when
//!    `is_aarch64_feature_detected!("neon")` passes.
//! 4. **Portable scalar** — the historical Rust loops, retained
//!    verbatim in [`scalar`]; always the fallback.
//!
//! ## Tolerance policy
//!
//! - *Elementwise* kernels (axpy, scale, sub/add, soft-threshold,
//!   prox-grad step, momentum, DCT butterflies, RPCA shrink targets)
//!   are **bit-identical** across tiers: vector tiers use explicit
//!   mul/add/sub intrinsics — never fused multiply-add — so each lane
//!   performs the exact scalar rounding sequence.
//! - *Reductions* (`dot`, `diff_norm2_sq`, the RPCA dual residual) may
//!   **re-associate** (wide accumulators, FMA) and are pinned to the
//!   scalar tier at ≤ 1e-12 relative error by property tests
//!   (`flexcs-linalg/tests/simd_props.rs`). Within one tier,
//!   `diff_norm2_sq(a, b)` is still bit-identical to `dot(d, d)` of the
//!   materialized difference — callers rely on that for fused-vs-staged
//!   equivalence.
//!
//! ## Adding a kernel
//!
//! 1. Add the reference loop to [`scalar`] (move it verbatim from the
//!    call site; it stays the semantic baseline).
//! 2. Add a `fn` pointer field to [`Kernels`] and wire it in the
//!    `SCALAR` table (plus `AVX2_FMA`/`NEON` if vectorized — a new
//!    field may simply reuse the scalar fn in vector tiers until a
//!    vector implementation exists).
//! 3. If vectorized: elementwise ⇒ mul/add only (bit-identity);
//!    reduction ⇒ document re-association and extend the ≤ 1e-12
//!    proptests. Every intrinsic block needs a `// SAFETY:` comment.
//! 4. Call it via `simd::kernels()` from the hot loop.
//!
//! All `unsafe` in the workspace lives in this module's vector tiers
//! (`scripts/check.sh` enforces this with a grep lint).

use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Which micro-kernel tier the process selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdTier {
    /// Portable scalar reference tier (always available).
    Scalar,
    /// x86_64 AVX2 + FMA tier (4-wide `f64`).
    Avx2Fma,
    /// aarch64 NEON tier (2-wide `f64`).
    Neon,
}

impl SimdTier {
    /// Stable identifier recorded in telemetry (`simd.tier.<name>`) and
    /// in `BENCH_decode.json` (`simd_tier`).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2Fma => "x86_64-avx2+fma",
            SimdTier::Neon => "aarch64-neon",
        }
    }
}

/// Lee-DCT butterfly lane loop: two output lanes from two input lanes
/// and one scalar coefficient (`butterfly_split` / `butterfly_merge`).
pub type ButterflyFn = fn(&mut [f64], &mut [f64], &[f64], &[f64], f64);

/// RPCA L-update target `out = (a − b) + c·k`.
pub type SubAddScaledFn = fn(&mut [f64], &[f64], &[f64], &[f64], f64);

/// RPCA S-update `out = shrink((a − b) + c·k, thr)`.
pub type SubAddScaledShrinkFn = fn(&mut [f64], &[f64], &[f64], &[f64], f64, f64);

/// RPCA dual update `y += mu·(d − l − s)`, returning the residual `Σ z²`.
pub type DualUpdateFn = fn(&mut [f64], &[f64], &[f64], &[f64], f64) -> f64;

/// Table of micro-kernel entry points for one tier.
///
/// All fields are safe `fn` pointers; the vector tiers do their own
/// length checking before entering `target_feature` code. Callers grab
/// the process-wide table once via [`kernels`] (or [`scalar_kernels`]
/// for an explicit reference baseline, e.g. microbenchmarks).
pub struct Kernels {
    /// Tier this table belongs to.
    pub tier: SimdTier,
    /// `y += alpha * x` (elementwise, bit-identical across tiers).
    pub axpy: fn(alpha: f64, x: &[f64], y: &mut [f64]),
    /// `a *= s` (elementwise, bit-identical across tiers).
    pub scale: fn(a: &mut [f64], s: f64),
    /// `out = a - b` (elementwise, bit-identical across tiers).
    pub sub: fn(out: &mut [f64], a: &[f64], b: &[f64]),
    /// `out = a + b` (elementwise, bit-identical across tiers).
    pub add: fn(out: &mut [f64], a: &[f64], b: &[f64]),
    /// Dot product (reduction, ≤ 1e-12 relative across tiers).
    pub dot: fn(a: &[f64], b: &[f64]) -> f64,
    /// `Σ (a_i − b_i)²` (reduction, ≤ 1e-12 relative across tiers;
    /// bit-identical to `dot(d, d)` within a tier).
    pub diff_norm2_sq: fn(a: &[f64], b: &[f64]) -> f64,
    /// In-place soft threshold (elementwise, bit-identical).
    pub soft_threshold: fn(a: &mut [f64], t: f64),
    /// `out[i] = shrink(y[i] − step·g[i], t)` (elementwise,
    /// bit-identical).
    pub prox_grad_step: fn(out: &mut [f64], y: &[f64], g: &[f64], step: f64, t: f64),
    /// `y[i] = xn[i] + beta·(xn[i] − xo[i])` (elementwise,
    /// bit-identical).
    pub momentum: fn(y: &mut [f64], xn: &[f64], xo: &[f64], beta: f64),
    /// Lee-DCT forward butterfly lane loop: `alpha = x + y`,
    /// `beta = (x − y)·inv` (elementwise, bit-identical).
    pub butterfly_split: ButterflyFn,
    /// Lee-DCT inverse butterfly lane loop: `top = 0.5·(alpha + c·beta)`,
    /// `bottom = 0.5·(alpha − c·beta)` (elementwise, bit-identical).
    pub butterfly_merge: ButterflyFn,
    /// RPCA L-update target `out = (a − b) + c·k` (elementwise,
    /// bit-identical).
    pub sub_add_scaled: SubAddScaledFn,
    /// RPCA S-update `out = shrink((a − b) + c·k, thr)` (elementwise,
    /// bit-identical).
    pub sub_add_scaled_shrink: SubAddScaledShrinkFn,
    /// RPCA dual update `y += mu·z`, `z = d − l − s`, returns `Σ z²`
    /// (update elementwise bit-identical; returned sum is a reduction,
    /// ≤ 1e-12 relative).
    pub dual_update_residual_sq: DualUpdateFn,
}

/// Portable scalar reference table (always available on every target).
static SCALAR: Kernels = Kernels {
    tier: SimdTier::Scalar,
    axpy: scalar::axpy,
    scale: scalar::scale,
    sub: scalar::sub,
    add: scalar::add,
    dot: scalar::dot,
    diff_norm2_sq: scalar::diff_norm2_sq,
    soft_threshold: scalar::soft_threshold,
    prox_grad_step: scalar::prox_grad_step,
    momentum: scalar::momentum,
    butterfly_split: scalar::butterfly_split,
    butterfly_merge: scalar::butterfly_merge,
    sub_add_scaled: scalar::sub_add_scaled,
    sub_add_scaled_shrink: scalar::sub_add_scaled_shrink,
    dual_update_residual_sq: scalar::dual_update_residual_sq,
};

#[cfg(target_arch = "x86_64")]
static AVX2_FMA: Kernels = Kernels {
    tier: SimdTier::Avx2Fma,
    axpy: avx2::axpy,
    scale: avx2::scale,
    sub: avx2::sub,
    add: avx2::add,
    dot: avx2::dot,
    diff_norm2_sq: avx2::diff_norm2_sq,
    soft_threshold: avx2::soft_threshold,
    prox_grad_step: avx2::prox_grad_step,
    momentum: avx2::momentum,
    butterfly_split: avx2::butterfly_split,
    butterfly_merge: avx2::butterfly_merge,
    sub_add_scaled: avx2::sub_add_scaled,
    sub_add_scaled_shrink: avx2::sub_add_scaled_shrink,
    dual_update_residual_sq: avx2::dual_update_residual_sq,
};

#[cfg(target_arch = "aarch64")]
static NEON: Kernels = Kernels {
    tier: SimdTier::Neon,
    axpy: neon::axpy,
    scale: neon::scale,
    sub: neon::sub,
    add: neon::add,
    dot: neon::dot,
    diff_norm2_sq: neon::diff_norm2_sq,
    soft_threshold: neon::soft_threshold,
    prox_grad_step: neon::prox_grad_step,
    momentum: neon::momentum,
    butterfly_split: neon::butterfly_split,
    butterfly_merge: neon::butterfly_merge,
    sub_add_scaled: neon::sub_add_scaled,
    sub_add_scaled_shrink: neon::sub_add_scaled_shrink,
    dual_update_residual_sq: neon::dual_update_residual_sq,
};

/// Interprets the `FLEXCS_FORCE_SCALAR` environment value: unset,
/// empty, `"0"`, or (case-insensitive) `"false"` leave runtime
/// detection on; anything else forces the scalar tier.
fn force_scalar(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(s) => !(s.is_empty() || s == "0" || s.eq_ignore_ascii_case("false")),
    }
}

fn select() -> &'static Kernels {
    let env = std::env::var("FLEXCS_FORCE_SCALAR").ok();
    if force_scalar(env.as_deref()) {
        return &SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return &AVX2_FMA;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return &NEON;
        }
    }
    &SCALAR
}

/// Process-wide kernel table: selected on first call (see the module
/// docs for the selection order) and fixed for the process lifetime.
pub fn kernels() -> &'static Kernels {
    static KERNELS: OnceLock<&'static Kernels> = OnceLock::new();
    KERNELS.get_or_init(select)
}

/// The scalar reference table, regardless of what [`kernels`] selected.
/// Used by microbenchmarks and property tests as the baseline side.
pub fn scalar_kernels() -> &'static Kernels {
    &SCALAR
}

/// The tier [`kernels`] selected for this process.
pub fn tier() -> SimdTier {
    kernels().tier
}

/// Stable name of the selected tier (see [`SimdTier::name`]).
pub fn tier_name() -> &'static str {
    kernels().tier.name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_parsing() {
        assert!(!force_scalar(None));
        assert!(!force_scalar(Some("")));
        assert!(!force_scalar(Some("0")));
        assert!(!force_scalar(Some("false")));
        assert!(!force_scalar(Some("FALSE")));
        assert!(force_scalar(Some("1")));
        assert!(force_scalar(Some("true")));
        assert!(force_scalar(Some("yes")));
    }

    #[test]
    fn selected_tier_is_consistent() {
        let k = kernels();
        assert_eq!(k.tier, tier());
        assert_eq!(k.tier.name(), tier_name());
        // The scalar table always reports the scalar tier.
        assert_eq!(scalar_kernels().tier, SimdTier::Scalar);
        assert_eq!(SimdTier::Scalar.name(), "scalar");
    }

    #[test]
    fn dispatched_elementwise_kernels_match_scalar_bitwise() {
        let k = kernels();
        let s = scalar_kernels();
        let n = 37; // odd length exercises every remainder path
        let a: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 19) as f64 - 9.0).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 53 + 7) % 23) as f64 - 11.0).collect();

        let mut y0 = b.clone();
        let mut y1 = b.clone();
        (k.axpy)(0.75, &a, &mut y0);
        (s.axpy)(0.75, &a, &mut y1);
        assert_eq!(y0, y1);

        let mut o0 = vec![0.0; n];
        let mut o1 = vec![0.0; n];
        (k.prox_grad_step)(&mut o0, &a, &b, 0.3, 1.5);
        (s.prox_grad_step)(&mut o1, &a, &b, 0.3, 1.5);
        assert_eq!(o0, o1);

        let mut t0 = a.clone();
        let mut t1 = a.clone();
        (k.soft_threshold)(&mut t0, 2.0);
        (s.soft_threshold)(&mut t1, 2.0);
        assert_eq!(t0, t1);
    }

    #[test]
    fn dispatched_reductions_match_scalar_closely() {
        let k = kernels();
        let s = scalar_kernels();
        let n = 1001;
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        let (d0, d1) = ((k.dot)(&a, &b), (s.dot)(&a, &b));
        assert!((d0 - d1).abs() <= 1e-12 * d1.abs().max(1.0));
        let (n0, n1) = ((k.diff_norm2_sq)(&a, &b), (s.diff_norm2_sq)(&a, &b));
        assert!((n0 - n1).abs() <= 1e-12 * n1.abs().max(1.0));
    }

    #[test]
    fn diff_norm2_sq_bit_identical_to_dot_of_difference_within_tier() {
        let k = kernels();
        let n = 37;
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin() * 3.0).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos() * 2.0).collect();
        let mut d = vec![0.0; n];
        (k.sub)(&mut d, &a, &b);
        let fused = (k.diff_norm2_sq)(&a, &b);
        let staged = (k.dot)(&d, &d);
        assert_eq!(fused.to_bits(), staged.to_bits());
    }
}
