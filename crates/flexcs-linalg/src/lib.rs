//! # flexcs-linalg
//!
//! Self-contained dense linear algebra for the flexcs stack — the Rust
//! reproduction of *"Robust Design of Large Area Flexible Electronics via
//! Compressed Sensing"* (DAC 2020).
//!
//! The crate deliberately implements everything from scratch (the
//! reproduction brief forbids external linear-algebra dependencies) and is
//! sized for the problem domain: sensor frames up to a few thousand pixels,
//! MNA circuit Jacobians of a few hundred nodes, and RPCA on frame-sized
//! matrices.
//!
//! ## Contents
//!
//! - [`Matrix`]: dense row-major `f64` matrix with the usual algebra.
//! - [`vecops`]: slice-level vector kernels (dot, norms, soft threshold).
//! - [`simd`]: runtime-dispatched micro-kernel tiers (AVX2+FMA / NEON /
//!   portable scalar) behind a `OnceLock`'d kernel table.
//! - [`Lu`] / [`solve`]: partially pivoted LU for general square systems.
//! - [`Cholesky`] / [`solve_spd`]: SPD solves for Gram systems.
//! - [`Qr`] / [`solve_least_squares`]: Householder QR for least squares.
//! - [`Svd`]: one-sided Jacobi SVD (thin), plus singular-value shrinkage
//!   for RPCA.
//! - [`Rsvd`]: randomized truncated SVD (Gaussian range finder, block
//!   power iterations, residual certificate) for the RPCA hot path.
//! - [`SymmetricEigen`]: cyclic Jacobi symmetric eigendecomposition.
//! - [`Complex`] / [`ComplexMatrix`]: complex solves for AC circuit
//!   analysis.
//!
//! ## Example
//!
//! ```
//! use flexcs_linalg::{Matrix, Svd};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64);
//! let svd = Svd::compute(&a)?;
//! let a2 = svd.truncated(2); // best rank-2 approximation
//! assert!(a2.norm_fro() <= a.norm_fro() + 1e-12);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `simd` module's vector tiers opt
// back in with a module-level `allow(unsafe_code)` (runtime-dispatched
// `std::arch` intrinsics behind safe, length-checked wrappers). All
// other code in the workspace stays on safe Rust, enforced by the
// grep lint in scripts/check.sh.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Factorization kernels are written as index loops over sub-ranges of
// rows/columns, mirroring the textbook algorithms (and keeping the
// triangular-solve bounds visible); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod complex;
mod eigen;
mod error;
mod lu;
mod matrix;
mod qr;
mod rsvd;
pub mod simd;
mod svd;
pub mod vecops;

pub use cholesky::{solve_spd, Cholesky};
pub use complex::{Complex, ComplexMatrix};
pub use eigen::SymmetricEigen;
pub use error::{LinalgError, Result};
pub use lu::{solve, Lu};
pub use matrix::Matrix;
pub use qr::{solve_least_squares, Qr, QrScratch};
pub use rsvd::{Rsvd, RsvdConfig};
pub use svd::{spectral_norm_estimate, Svd};
