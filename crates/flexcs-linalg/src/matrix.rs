//! Dense, row-major, `f64` matrix type.
//!
//! [`Matrix`] is the workhorse container of the flexcs stack: sensor frames,
//! DCT bases, measurement operators and RPCA decompositions are all carried
//! as dense matrices. The representation is a contiguous row-major
//! `Vec<f64>`, which keeps iteration cache-friendly for the moderate sizes
//! (tens to a few thousand rows) used by large-area sensor arrays.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if rows have unequal
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::DimensionMismatch(
                "from_rows: empty input".to_string(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch(format!(
                    "from_rows: row {i} has {} entries, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows *
    /// cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "from_vec: {rows}x{cols} needs {} entries, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a column vector (an `n x 1` matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Overwrites `self` with a copy of `other`, reusing the existing
    /// allocation when capacity allows (the in-place analogue of
    /// `clone`, for buffers recycled across solves).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reshapes `self` to an all-zero `rows x cols` matrix, reusing the
    /// existing allocation when capacity allows (the in-place analogue
    /// of [`Matrix::zeros`]).
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Appends `col` as a new rightmost column, preserving all existing
    /// entries. The row-major storage is re-packed back-to-front in
    /// place, so the append is O(rows·cols) moves and allocation-free
    /// once the underlying buffer has capacity — this is what lets an
    /// incrementally-grown least-squares submatrix (e.g. OMP's support
    /// matrix) avoid re-extracting every column on each refit.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `col.len() !=
    /// self.rows()`.
    pub fn append_col(&mut self, col: &[f64]) -> Result<()> {
        if col.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "append_col: column of length {} onto a matrix with {} rows",
                col.len(),
                self.rows
            )));
        }
        let (m, k) = (self.rows, self.cols);
        self.data.resize(m * (k + 1), 0.0);
        // Walk rows bottom-up (and entries right-to-left) so every move
        // writes ahead of all still-unmoved data: row i lands at offset
        // i·(k+1) ≥ i·k, past the end of unmoved row i−1.
        for i in (0..m).rev() {
            for c in (0..k).rev() {
                self.data[i * (k + 1) + c] = self.data[i * k + c];
            }
            self.data[i * (k + 1) + k] = col[i];
        }
        self.cols = k + 1;
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns entry `(i, j)` if in bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Iterates over all entries in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutably iterates over all entries in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Shared-dimension block edge for [`Matrix::matmul`]: a
    /// `MATMUL_BLOCK_K x MATMUL_BLOCK_J` panel of `rhs` (64 KiB) stays
    /// resident in L2 while it is swept once per output-row block.
    const MATMUL_BLOCK_K: usize = 64;
    /// Output-column block edge for [`Matrix::matmul`] (1 KiB output-row
    /// slice, L1-resident across the `k` sweep).
    const MATMUL_BLOCK_J: usize = 128;

    /// Matrix product `self * rhs`.
    ///
    /// Cache-blocked ikj kernel: the innermost loop streams contiguous
    /// row slices of `rhs` and the output, and `(k, j)` blocking keeps
    /// the active `rhs` panel and output slice cache-resident, so large
    /// products (SVD/QR/LP inner steps) run several times faster than a
    /// naive triple loop.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul: lhs is {}x{} but rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let (m, kk, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // The inner panel update is a dispatched axpy (elementwise, so
        // bit-identical to the historical open-coded loop on every
        // tier); the table lookup is hoisted out of the block sweep.
        let kern = crate::simd::kernels();
        for jb in (0..n).step_by(Self::MATMUL_BLOCK_J) {
            let j_end = (jb + Self::MATMUL_BLOCK_J).min(n);
            for kb in (0..kk).step_by(Self::MATMUL_BLOCK_K) {
                let k_end = (kb + Self::MATMUL_BLOCK_K).min(kk);
                for i in 0..m {
                    let arow = &self.data[i * kk..(i + 1) * kk];
                    let orow = &mut out.data[i * n + jb..i * n + j_end];
                    for k in kb..k_end {
                        let a = arow[k];
                        if a == 0.0 {
                            continue;
                        }
                        let rrow = &rhs.data[k * n + jb..k * n + j_end];
                        (kern.axpy)(a, rrow, orow);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Transpose-aware product `self * rhsᵀ` without materializing the
    /// transpose.
    ///
    /// Both operands are walked along contiguous rows (each output entry
    /// is a row-row dot product), so this is both allocation-free and
    /// cache-friendly where `a.matmul(&b.transpose())` would first build
    /// a strided copy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] unless `self.cols() ==
    /// rhs.cols()`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul_transpose_b: lhs is {}x{} but rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        // Materialize the transpose and run the blocked axpy kernel: the
        // row-by-row dot-product formulation serializes on its reduction
        // chain and measures 1.5-2x slower than transpose + matmul, so
        // the O(k·n) copy buys a strictly faster product.
        self.matmul(&rhs.transpose())
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() !=
    /// self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_fill(x, &mut y);
        Ok(y)
    }

    /// [`Matrix::matvec`] into a caller-owned buffer (resized to fit):
    /// the allocation-free variant solver inner loops call through
    /// `LinearOperator::apply_into`. Results are bit-identical to
    /// [`Matrix::matvec`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() !=
    /// self.cols()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec_into: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        out.resize(self.rows, 0.0);
        self.matvec_fill(x, out);
        Ok(())
    }

    fn matvec_fill(&self, x: &[f64], y: &mut [f64]) {
        // Per-row dispatched dot product: a reduction, so vector tiers
        // re-associate within the documented ≤ 1e-12 relative tolerance
        // (the scalar tier reproduces the historical sum exactly).
        let kern = crate::simd::kernels();
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = (kern.dot)(row, x);
        }
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() !=
    /// self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec_transpose: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.cols];
        self.matvec_transpose_fill(x, &mut y);
        Ok(y)
    }

    /// [`Matrix::matvec_transpose`] into a caller-owned buffer (resized
    /// and zeroed): the allocation-free variant solver inner loops call
    /// through `LinearOperator::apply_transpose_into`. Results are
    /// bit-identical to [`Matrix::matvec_transpose`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() !=
    /// self.rows()`.
    pub fn matvec_transpose_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec_transpose: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        out.clear();
        out.resize(self.cols, 0.0);
        self.matvec_transpose_fill(x, out);
        Ok(())
    }

    fn matvec_transpose_fill(&self, x: &[f64], y: &mut [f64]) {
        // Per-row dispatched axpy (elementwise, bit-identical across
        // tiers), keeping the historical zero-coefficient row skip.
        let kern = crate::simd::kernels();
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            (kern.axpy)(xi, row, y);
        }
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "bad row range {r0}..{r1}");
        assert!(c0 <= c1 && c1 <= self.cols, "bad column range {c0}..{c1}");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Builds a matrix from the given subset of this matrix's columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| self[(i, indices[j])])
    }

    /// Builds a matrix from the given subset of this matrix's rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(indices.len(), self.cols, |i, j| self[(indices[i], j)])
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` (entrywise).
    pub fn scaled(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Entrywise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "hadamard: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Frobenius norm `sqrt(sum of squares)`.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Sum of absolute entries (entrywise L1 norm).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Induced 1-norm (maximum absolute column sum).
    pub fn norm_one_induced(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Induced infinity-norm (maximum absolute row sum).
    pub fn norm_inf_induced(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all entries.
    ///
    /// Returns `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Minimum entry (`+inf` for an empty matrix).
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// Maximum entry (`-inf` for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Flattens to a row-major vector (clone of storage).
    pub fn to_flat(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference with another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "max_abs_diff: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Matrix;

            fn $method(self, rhs: &Matrix) -> Matrix {
                assert_eq!(
                    self.shape(),
                    rhs.shape(),
                    concat!(stringify!($method), ": shape mismatch")
                );
                Matrix {
                    rows: self.rows,
                    cols: self.cols,
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }

        impl $trait<Matrix> for Matrix {
            type Output = Matrix;

            fn $method(self, rhs: Matrix) -> Matrix {
                (&self).$method(&rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl Neg for Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn append_col_grows_in_place_and_matches_rebuild() {
        let mut grown = Matrix::zeros(3, 0);
        let cols = [[1.0, 4.0, 7.0], [2.0, 5.0, 8.0], [3.0, 6.0, 9.0]];
        for c in &cols {
            grown.append_col(c).unwrap();
        }
        let rebuilt =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        assert_eq!(grown.as_slice(), rebuilt.as_slice());
        assert_eq!(grown.shape(), (3, 3));
        assert!(sample().append_col(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace().unwrap(), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
        assert!(matches!(e, Err(LinalgError::DimensionMismatch(_))));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = a.transpose();
        let c = a.matmul(&b).unwrap();
        // [1 2 3; 4 5 6] * [1 4; 2 5; 3 6] = [14 32; 32 77]
        assert_eq!(
            c,
            Matrix::from_rows(&[&[14.0, 32.0], &[32.0, 77.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_across_block_edges() {
        // Sizes straddling the (k, j) block boundaries exercise every
        // partial-block path of the blocked kernel.
        for &(m, k, n) in &[
            (3usize, 5usize, 4usize),
            (65, 130, 129),
            (128, 64, 256),
            (1, 200, 1),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) as f64 * 0.013).sin());
            let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 17) as f64 * 0.011).cos());
            let fast = a.matmul(&b).unwrap();
            let mut naive = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for t in 0..k {
                        acc += a[(i, t)] * b[(t, j)];
                    }
                    naive[(i, j)] = acc;
                }
            }
            assert!(
                fast.max_abs_diff(&naive).unwrap() < 1e-10,
                "{m}x{k}x{n} diverged"
            );
        }
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(7, 9, |i, j| ((i + 2 * j) as f64 * 0.3).sin());
        let b = Matrix::from_fn(5, 9, |i, j| ((3 * i + j) as f64 * 0.2).cos());
        let fast = a.matmul_transpose_b(&b).unwrap();
        let reference = a.matmul(&b.transpose()).unwrap();
        assert!(fast.max_abs_diff(&reference).unwrap() < 1e-12);
        assert!(a.matmul_transpose_b(&Matrix::zeros(4, 3)).is_err());
    }

    #[test]
    fn matvec_and_transpose_agree_with_dense() {
        let a = sample();
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
        let z = a.matvec_transpose(&[1.0, 1.0]).unwrap();
        assert_eq!(z, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn submatrix_and_selection() {
        let a = sample();
        let s = a.submatrix(0, 2, 1, 3);
        assert_eq!(s, Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]).unwrap());
        let c = a.select_columns(&[2, 0]);
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]).unwrap());
        let r = a.select_rows(&[1]);
        assert_eq!(r, Matrix::from_rows(&[&[4.0, 5.0, 6.0]]).unwrap());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((a.norm_fro() - 5.0).abs() < 1e-12);
        assert_eq!(a.norm_max(), 4.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(a.norm_one_induced(), 4.0);
        assert_eq!(a.norm_inf_induced(), 4.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = sample();
        let b = &a + &a;
        assert_eq!(b[(1, 2)], 12.0);
        let c = &b - &a;
        assert_eq!(c, a);
        let d = &a * 2.0;
        assert_eq!(d, b);
        let e = -&a;
        assert_eq!(e[(0, 0)], -1.0);
        let mut f = a.clone();
        f += &a;
        assert_eq!(f, b);
        f -= &a;
        assert_eq!(f, a);
    }

    #[test]
    fn statistics() {
        let a = sample();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 6.0);
    }

    #[test]
    fn hadamard_product() {
        let a = sample();
        let h = a.hadamard(&a).unwrap();
        assert_eq!(h[(1, 1)], 25.0);
    }

    #[test]
    fn row_col_access() {
        let a = sample();
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
        assert_eq!(a.get(1, 2), Some(6.0));
        assert_eq!(a.get(2, 0), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = sample();
        let _ = a[(5, 0)];
    }

    #[test]
    fn debug_is_nonempty() {
        let a = sample();
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = sample();
        let mut b = a.clone();
        b[(0, 0)] += 0.25;
        assert!((a.max_abs_diff(&b).unwrap() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn from_diagonal_places_entries() {
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.trace().unwrap(), 6.0);
    }
}
