//! Householder QR factorization and least-squares solves.
//!
//! OMP-family solvers repeatedly solve over-determined systems restricted
//! to the current support set; QR is the numerically robust way to do so.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// A Householder QR factorization `A = Q·R` of an `m x n` matrix with
/// `m >= n`.
///
/// The factorization stores the Householder vectors implicitly and exposes
/// a thin `Q` (`m x n`) and square `R` (`n x n`) on demand.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, Qr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fit y = a + b t through three points (least squares).
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let qr = Qr::factor(&a)?;
/// let coef = qr.solve_least_squares(&[1.0, 2.0, 3.0])?;
/// assert!((coef[0] - 1.0).abs() < 1e-12);
/// assert!((coef[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, Householder vectors
    /// below the diagonal (with implicit unit leading entry).
    qr: Matrix,
    /// Scalar `beta` for each Householder reflector `H = I - beta v vᵀ`.
    betas: Vec<f64>,
}

impl Qr {
    /// Factors an `m x n` matrix with `m >= n`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `m < n`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr: need rows >= cols, got {m}x{n}"
            )));
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        householder_factor_in_place(&mut qr, &mut betas);
        Ok(Qr { qr, betas })
    }

    /// Shape `(m, n)` of the factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        apply_qt_in_place(&self.qr, &self.betas, &mut y);
        y
    }

    /// Solves the least-squares problem `min ||A·x - b||₂`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != m`, or
    /// [`LinalgError::Singular`] when `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.qr.rows();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr solve: expected rhs of length {m}, got {}",
                b.len()
            )));
        }
        let y = self.apply_qt(b);
        let mut x = Vec::new();
        back_substitute(&self.qr, &y, &mut x)?;
        Ok(x)
    }

    /// Materializes the thin orthonormal factor `Q` (`m x n`).
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        // Apply reflectors in reverse to the first n identity columns.
        for j in 0..n {
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            for k in (0..n).rev() {
                let beta = self.betas[k];
                if beta == 0.0 {
                    continue;
                }
                let mut s = e[k];
                for i in (k + 1)..m {
                    s += self.qr[(i, k)] * e[i];
                }
                s *= beta;
                e[k] -= s;
                for i in (k + 1)..m {
                    e[i] -= s * self.qr[(i, k)];
                }
            }
            for i in 0..m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Materializes the square upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Squared residual `||A·x - b||₂²` of the least-squares solution,
    /// computed from the tail of `Qᵀ·b` without forming `x`.
    pub fn residual_norm_squared(&self, b: &[f64]) -> f64 {
        let (m, n) = self.qr.shape();
        let y = self.apply_qt(b);
        y[n..m].iter().map(|v| v * v).sum()
    }
}

/// Householder factorization of the matrix held in `qr`, in place: R in
/// the upper triangle, normalized reflector vectors below the diagonal.
/// Shared by [`Qr::factor`] and [`QrScratch`] so both produce
/// bit-identical factors.
fn householder_factor_in_place(qr: &mut Matrix, betas: &mut Vec<f64>) {
    let (m, n) = qr.shape();
    betas.clear();
    for k in 0..n {
        // Householder vector for column k below row k.
        let mut norm = 0.0;
        for i in k..m {
            norm += qr[(i, k)] * qr[(i, k)];
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            betas.push(0.0);
            continue;
        }
        let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
        let v0 = qr[(k, k)] - alpha;
        // v = (v0, a[k+1..m, k]); normalized so v[0] = 1.
        let mut vsq = v0 * v0;
        for i in (k + 1)..m {
            vsq += qr[(i, k)] * qr[(i, k)];
        }
        if vsq == 0.0 {
            betas.push(0.0);
            continue;
        }
        let beta = 2.0 * v0 * v0 / vsq;
        // Store normalized vector below the diagonal (v/v0, unit head).
        for i in (k + 1)..m {
            qr[(i, k)] /= v0;
        }
        qr[(k, k)] = alpha;
        // Apply H to the remaining columns.
        for j in (k + 1)..n {
            let mut s = qr[(k, j)];
            for i in (k + 1)..m {
                s += qr[(i, k)] * qr[(i, j)];
            }
            s *= beta;
            qr[(k, j)] -= s;
            for i in (k + 1)..m {
                let vik = qr[(i, k)];
                qr[(i, j)] -= s * vik;
            }
        }
        betas.push(beta);
    }
}

/// Applies `Qᵀ` (as stored reflectors) to `y` in place.
fn apply_qt_in_place(qr: &Matrix, betas: &[f64], y: &mut [f64]) {
    let (m, n) = qr.shape();
    for k in 0..n {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        let mut s = y[k];
        for i in (k + 1)..m {
            s += qr[(i, k)] * y[i];
        }
        s *= beta;
        y[k] -= s;
        for i in (k + 1)..m {
            y[i] -= s * qr[(i, k)];
        }
    }
}

/// Back substitution on the R factor's upper triangle; `x` is resized to
/// `n`. A diagonal entry tiny relative to the largest one signals rank
/// deficiency.
fn back_substitute(qr: &Matrix, y: &[f64], x: &mut Vec<f64>) -> Result<()> {
    let n = qr.cols();
    let rmax = (0..n).fold(0.0_f64, |m, i| m.max(qr[(i, i)].abs()));
    x.clear();
    x.resize(n, 0.0);
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= qr[(i, j)] * x[j];
        }
        let rii = qr[(i, i)];
        if rii.abs() <= rmax * 1e-13 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / rii;
    }
    Ok(())
}

/// Reusable storage for repeated QR least-squares solves.
///
/// The greedy sparse solvers refit on a growing support every iteration;
/// factoring through a scratch reuses the packed-factor matrix, reflector
/// scalars and `Qᵀb` buffer across refits instead of allocating each
/// time. Factors and solutions are bit-identical to [`Qr::factor`] +
/// [`Qr::solve_least_squares`] — both run the same in-place routines.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, Qr, QrScratch};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let mut scratch = QrScratch::new();
/// scratch.factor_from(&a)?;
/// let mut x = Vec::new();
/// scratch.solve_least_squares_into(&[1.0, 2.0, 3.0], &mut x)?;
/// let reference = Qr::factor(&a)?.solve_least_squares(&[1.0, 2.0, 3.0])?;
/// assert_eq!(x, reference);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrScratch {
    qr: Matrix,
    betas: Vec<f64>,
    y: Vec<f64>,
}

impl QrScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        QrScratch {
            qr: Matrix::zeros(0, 0),
            betas: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Factors `a` into the scratch storage, reusing prior allocations.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` has more columns
    /// than rows.
    pub fn factor_from(&mut self, a: &Matrix) -> Result<()> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr: need rows >= cols, got {m}x{n}"
            )));
        }
        self.qr.copy_from(a);
        householder_factor_in_place(&mut self.qr, &mut self.betas);
        Ok(())
    }

    /// Shape `(m, n)` of the most recently factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Solves `min ||A·x - b||₂` against the held factorization, writing
    /// the solution into `x` (resized to `n`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != m`, or
    /// [`LinalgError::Singular`] when `A` is rank deficient.
    pub fn solve_least_squares_into(&mut self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let (m, _) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr solve: expected rhs of length {m}, got {}",
                b.len()
            )));
        }
        self.y.clear();
        self.y.extend_from_slice(b);
        apply_qt_in_place(&self.qr, &self.betas, &mut self.y);
        back_substitute(&self.qr, &self.y, x)
    }
}

impl Default for QrScratch {
    fn default() -> Self {
        QrScratch::new()
    }
}

/// One-shot least-squares solve `min ||A·x - b||₂`.
///
/// # Errors
///
/// See [`Qr::factor`] and [`Qr::solve_least_squares`].
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    #[test]
    fn qr_reconstructs_a() {
        let mut r = lcg(7);
        let a = Matrix::from_fn(8, 5, |_, _| r());
        let qr = Qr::factor(&a).unwrap();
        let rec = qr.q_thin().matmul(&qr.r()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn q_is_orthonormal() {
        let mut r = lcg(13);
        let a = Matrix::from_fn(10, 4, |_, _| r());
        let q = Qr::factor(&a).unwrap().q_thin();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-10);
    }

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve_least_squares(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let mut r = lcg(99);
        let a = Matrix::from_fn(20, 6, |_, _| r());
        let b: Vec<f64> = (0..20).map(|_| r()).collect();
        let x_qr = solve_least_squares(&a, &b).unwrap();
        // Normal equations via Cholesky.
        let at = a.transpose();
        let g = at.matmul(&a).unwrap();
        let rhs = at.matvec(&b).unwrap();
        let x_ne = crate::cholesky::solve_spd(&g, &rhs).unwrap();
        for (p, q) in x_qr.iter().zip(&x_ne) {
            assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn residual_norm_matches_direct() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [0.0, 1.0, 1.0];
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let direct: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum();
        assert!((qr.residual_norm_squared(&b) - direct).abs() < 1e-12);
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 4);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
