//! Error types for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Error produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ///
    /// The payload is a human-readable description of the mismatch,
    /// e.g. `"matmul: lhs is 3x4 but rhs is 5x2"`.
    DimensionMismatch(String),
    /// A matrix that must be square was not.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Elimination step at which the zero pivot appeared.
        pivot: usize,
    },
    /// Cholesky factorization found a non-positive-definite matrix.
    NotPositiveDefinite {
        /// Diagonal index with a non-positive pivot.
        index: usize,
    },
    /// An iterative algorithm failed to converge within its budget.
    NotConverged {
        /// Iterations executed before giving up.
        iterations: usize,
        /// Residual magnitude at the final iteration.
        residual: f64,
    },
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => {
                write!(f, "dimension mismatch: {msg}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite at index {index}")
            }
            LinalgError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iteration failed to converge after {iterations} steps (residual {residual:.3e})"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert_eq!(e.to_string(), "matrix must be square, got 2x3");
        let e = LinalgError::Singular { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn not_converged_formats_residual() {
        let e = LinalgError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5.000e-1"));
    }
}
