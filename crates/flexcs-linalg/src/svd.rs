//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi is chosen over Golub–Kahan bidiagonalization because it
//! is simple, unconditionally convergent, and delivers high relative
//! accuracy — plenty for the moderate matrix sizes (sensor frames up to a
//! few hundred per side) that RPCA and low-rank analysis need.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// A thin singular value decomposition `A = U·Σ·Vᵀ`.
///
/// For an `m x n` input, `u` is `m x k`, `v` is `n x k` and `sigma` has
/// length `k = min(m, n)`, with singular values sorted in non-increasing
/// order.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, Svd};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]])?;
/// let svd = Svd::compute(&a)?;
/// assert!((svd.sigma()[0] - 3.0).abs() < 1e-12);
/// assert!((svd.sigma()[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotConverged`] if the Jacobi sweeps do not
    /// reach the orthogonality tolerance (practically unreachable for
    /// finite input) or [`LinalgError::InvalidArgument`] for an empty
    /// matrix.
    pub fn compute(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument(
                "svd: empty matrix".to_string(),
            ));
        }
        if m >= n {
            Self::compute_tall(a)
        } else {
            // SVD(Aᵀ) = V Σ Uᵀ — swap factors.
            let svd_t = Self::compute_tall(&a.transpose())?;
            Ok(Svd {
                u: svd_t.v,
                sigma: svd_t.sigma,
                v: svd_t.u,
            })
        }
    }

    /// One-sided Jacobi on a tall (m >= n) matrix.
    fn compute_tall(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        // Work on columns of a copy of A; accumulate rotations in V.
        let mut w = a.clone();
        let mut v = Matrix::identity(n);
        let eps = 1e-14;
        let max_sweeps = 60;
        let mut converged = false;
        let mut off = 0.0;
        // Columns with negligible norm relative to the matrix are
        // numerically null; rotating them only churns rounding noise.
        let fro2: f64 = w.iter().map(|v| v * v).sum();
        let null_tol = fro2 * 1e-28;
        for _sweep in 0..max_sweeps {
            off = 0.0_f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries for columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        app += wp * wp;
                        aqq += wq * wq;
                        apq += wp * wq;
                    }
                    if app <= null_tol || aqq <= null_tol {
                        continue;
                    }
                    let denom = (app * aqq).sqrt();
                    if denom > 0.0 {
                        off = off.max(apq.abs() / denom);
                    }
                    if apq.abs() <= eps * denom || denom == 0.0 {
                        continue;
                    }
                    // Jacobi rotation zeroing the (p, q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        w[(i, p)] = c * wp - s * wq;
                        w[(i, q)] = s * wp + c * wq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off <= eps * 8.0 {
                converged = true;
                break;
            }
        }
        if !converged && off > 1e-7 {
            return Err(LinalgError::NotConverged {
                iterations: max_sweeps,
                residual: off,
            });
        }
        // Singular values are the column norms; U columns are normalized
        // columns of W.
        let mut order: Vec<usize> = (0..n).collect();
        let mut sig = vec![0.0; n];
        for (j, s) in sig.iter_mut().enumerate() {
            let mut norm = 0.0;
            for i in 0..m {
                norm += w[(i, j)] * w[(i, j)];
            }
            *s = norm.sqrt();
        }
        order.sort_by(|&p, &q| {
            sig[q]
                .partial_cmp(&sig[p])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut u = Matrix::zeros(m, n);
        let mut vo = Matrix::zeros(n, n);
        let mut sigma = vec![0.0; n];
        for (new_j, &old_j) in order.iter().enumerate() {
            let s = sig[old_j];
            sigma[new_j] = s;
            if s > 0.0 {
                for i in 0..m {
                    u[(i, new_j)] = w[(i, old_j)] / s;
                }
            } else {
                // Leave a zero column; callers treat rank-deficient tails
                // via sigma == 0.
                u[(new_j.min(m - 1), new_j)] = 0.0;
            }
            for i in 0..n {
                vo[(i, new_j)] = v[(i, old_j)];
            }
        }
        Ok(Svd { u, sigma, v: vo })
    }

    /// Left singular vectors (`m x k`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values, non-increasing.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// Right singular vectors (`n x k`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Reconstructs `U·Σ·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let us = Matrix::from_fn(self.u.rows(), self.sigma.len(), |i, j| {
            self.u[(i, j)] * self.sigma[j]
        });
        us.matmul_transpose_b(&self.v)
            .expect("svd factors have consistent shapes")
    }

    /// Numerical rank: number of singular values above
    /// `tol * sigma_max`.
    ///
    /// The tolerance is **relative** to the largest singular value —
    /// the usual convention for "numerical rank". Callers holding an
    /// absolute singular-value threshold (like RPCA's shrinkage level
    /// `1/μ`) must use [`Svd::rank_abs`] instead: converting via
    /// `rank(t / sigma_max)` round-trips through a division whose
    /// rounding can move the count by one when a singular value sits
    /// exactly at the boundary.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > tol * smax).count()
    }

    /// Number of singular values strictly above the **absolute**
    /// threshold — exactly the count [`Svd::shrink`] retains for
    /// `tau = threshold`. See [`Svd::rank`] for the relative variant.
    pub fn rank_abs(&self, threshold: f64) -> usize {
        self.sigma.iter().filter(|&&s| s > threshold).count()
    }

    /// Best rank-`r` approximation (truncated SVD).
    pub fn truncated(&self, r: usize) -> Matrix {
        let r = r.min(self.sigma.len());
        let us = Matrix::from_fn(self.u.rows(), r, |i, j| self.u[(i, j)] * self.sigma[j]);
        let vt = Matrix::from_fn(r, self.v.rows(), |i, j| self.v[(j, i)]);
        us.matmul(&vt).expect("truncated factors consistent")
    }

    /// Applies soft thresholding to the singular values and reconstructs —
    /// the singular-value shrinkage operator used by RPCA.
    pub fn shrink(&self, tau: f64) -> Matrix {
        let k = self.sigma.len();
        let mut shrunk = Matrix::zeros(self.u.rows(), self.v.rows());
        for j in 0..k {
            let s = (self.sigma[j] - tau).max(0.0);
            if s == 0.0 {
                continue;
            }
            for i in 0..self.u.rows() {
                let uis = self.u[(i, j)] * s;
                for l in 0..self.v.rows() {
                    shrunk[(i, l)] += uis * self.v[(l, j)];
                }
            }
        }
        shrunk
    }

    /// Nuclear norm (sum of singular values).
    pub fn nuclear_norm(&self) -> f64 {
        self.sigma.iter().sum()
    }

    /// Spectral norm (largest singular value); 0.0 for an empty spectrum.
    pub fn spectral_norm(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }
}

/// Largest singular value of `a`, via a handful of power iterations on
/// `AᵀA`. Cheaper than a full SVD when only the operator norm is needed
/// (e.g. for ISTA/FISTA step sizes).
pub fn spectral_norm_estimate(a: &Matrix, iterations: usize) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    // Deterministic start vector with energy in all coordinates.
    let mut x: Vec<f64> = (0..n)
        .map(|i| 1.0 + (i as f64 * 0.7).sin() * 0.01)
        .collect();
    let mut norm = 0.0;
    for _ in 0..iterations.max(1) {
        let ax = a.matvec(&x).expect("dims fixed");
        let atax = a.matvec_transpose(&ax).expect("dims fixed");
        norm = crate::vecops::norm2(&atax).sqrt();
        let scale = crate::vecops::norm2(&atax);
        if scale == 0.0 {
            return 0.0;
        }
        x = atax.iter().map(|v| v / scale).collect();
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    #[test]
    fn diagonal_singular_values() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.sigma()[0] - 3.0).abs() < 1e-12);
        assert!((svd.sigma()[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_tall() {
        let mut r = lcg(3);
        let a = Matrix::from_fn(9, 5, |_, _| r());
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.reconstruct().max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn reconstruction_wide() {
        let mut r = lcg(4);
        let a = Matrix::from_fn(4, 7, |_, _| r());
        let svd = Svd::compute(&a).unwrap();
        assert!(svd.reconstruct().max_abs_diff(&a).unwrap() < 1e-9);
        assert_eq!(svd.sigma().len(), 4);
        assert_eq!(svd.u().shape(), (4, 4));
        assert_eq!(svd.v().shape(), (7, 4));
    }

    #[test]
    fn factors_are_orthonormal() {
        let mut r = lcg(5);
        let a = Matrix::from_fn(8, 6, |_, _| r());
        let svd = Svd::compute(&a).unwrap();
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-9);
        assert!(vtv.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-9);
    }

    #[test]
    fn sigma_is_sorted_nonincreasing() {
        let mut r = lcg(6);
        let a = Matrix::from_fn(10, 10, |_, _| r());
        let svd = Svd::compute(&a).unwrap();
        for w in svd.sigma().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_of_low_rank_matrix() {
        // Rank-2 outer-product construction.
        let u = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let v = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0]]).unwrap();
        let a = u.matmul(&v).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 2);
    }

    #[test]
    fn truncation_is_best_approximation_energy() {
        let mut r = lcg(8);
        let a = Matrix::from_fn(6, 6, |_, _| r());
        let svd = Svd::compute(&a).unwrap();
        let a2 = svd.truncated(2);
        let err = (&a - &a2).norm_fro();
        // Eckart–Young: error equals sqrt of the sum of trailing squared
        // singular values.
        let expect: f64 = svd.sigma()[2..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - expect).abs() < 1e-9);
    }

    #[test]
    fn shrink_matches_manual() {
        let a = Matrix::from_diagonal(&[5.0, 1.0]);
        let svd = Svd::compute(&a).unwrap();
        let s = svd.shrink(2.0);
        assert!(s.max_abs_diff(&Matrix::from_diagonal(&[3.0, 0.0])).unwrap() < 1e-12);
    }

    #[test]
    fn spectral_norm_estimate_close_to_svd() {
        let mut r = lcg(11);
        let a = Matrix::from_fn(12, 9, |_, _| r());
        let svd = Svd::compute(&a).unwrap();
        let est = spectral_norm_estimate(&a, 50);
        assert!((est - svd.spectral_norm()).abs() / svd.spectral_norm() < 1e-6);
    }

    #[test]
    fn zero_matrix_has_zero_sigma() {
        let svd = Svd::compute(&Matrix::zeros(3, 3)).unwrap();
        assert!(svd.sigma().iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-12), 0);
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(Svd::compute(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn nuclear_and_spectral_norms() {
        let a = Matrix::from_diagonal(&[3.0, 4.0]);
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.nuclear_norm() - 7.0).abs() < 1e-12);
        assert!((svd.spectral_norm() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rank_is_relative_and_rank_abs_is_absolute() {
        // Pins the threshold semantics: rank() scales by sigma_max,
        // rank_abs() does not.
        let a = Matrix::from_diagonal(&[8.0, 4.0, 1.0, 0.25]);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(0.5), 1); // > 0.5 * 8 = 4 (strict)
        assert_eq!(svd.rank_abs(0.5), 3); // > 0.5 absolute
        assert_eq!(svd.rank_abs(4.0), 1); // strict at the boundary
        assert_eq!(svd.rank_abs(0.0), 4);
        // rank_abs counts exactly what shrink retains.
        let tau = 0.5;
        let retained = svd.sigma().iter().filter(|&&s| s - tau > 0.0).count();
        assert_eq!(svd.rank_abs(tau), retained);
    }
}
