//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! RPCA diagnostics and the sampling-matrix coherence analysis need
//! eigenvalues of small symmetric Gram matrices; cyclic Jacobi is exact
//! enough and dependency-free.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigendecomposition `A = Q·Λ·Qᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in non-increasing order with matching columns in
/// `q`.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, SymmetricEigen};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = SymmetricEigen::compute(&a)?;
/// assert!((eig.values()[0] - 3.0).abs() < 1e-12);
/// assert!((eig.values()[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    q: Matrix,
}

impl SymmetricEigen {
    /// Computes eigenvalues and eigenvectors of a symmetric matrix.
    ///
    /// Only symmetry up to rounding is assumed; the strictly upper triangle
    /// is averaged with the lower before iteration.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input or
    /// [`LinalgError::NotConverged`] if Jacobi sweeps fail to reduce
    /// off-diagonal mass (practically unreachable).
    pub fn compute(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidArgument("eigen: empty matrix".into()));
        }
        // Symmetrize defensively.
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut q = Matrix::identity(n);
        let max_sweeps = 64;
        let mut converged = false;
        let mut off = 0.0;
        for _ in 0..max_sweeps {
            off = 0.0_f64;
            for p in 0..n {
                for r in (p + 1)..n {
                    off += m[(p, r)] * m[(p, r)];
                }
            }
            off = off.sqrt();
            if off < 1e-13 * (1.0 + m.norm_fro()) {
                converged = true;
                break;
            }
            for p in 0..n {
                for r in (p + 1)..n {
                    let apq = m[(p, r)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(r, r)];
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    // Update rows/cols p and r of M = Jᵀ M J.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, r)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, r)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(r, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(r, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let qkp = q[(k, p)];
                        let qkq = q[(k, r)];
                        q[(k, p)] = c * qkp - s * qkq;
                        q[(k, r)] = s * qkp + c * qkq;
                    }
                }
            }
        }
        if !converged && off > 1e-8 {
            return Err(LinalgError::NotConverged {
                iterations: max_sweeps,
                residual: off,
            });
        }
        // Extract and sort.
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let qs = Matrix::from_fn(n, n, |i, j| q[(i, pairs[j].1)]);
        Ok(SymmetricEigen { values, q: qs })
    }

    /// Eigenvalues, non-increasing.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvector matrix (column `j` pairs with
    /// `values()[j]`).
    pub fn vectors(&self) -> &Matrix {
        &self.q
    }

    /// Reconstructs `Q·Λ·Qᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let ql = Matrix::from_fn(n, n, |i, j| self.q[(i, j)] * self.values[j]);
        ql.matmul_transpose_b(&self.q).expect("consistent shapes")
    }

    /// Condition number `|λ_max| / |λ_min|` (infinite when the smallest
    /// eigenvalue is zero).
    pub fn condition_number(&self) -> f64 {
        let lmax = self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let lmin = self
            .values
            .iter()
            .fold(f64::INFINITY, |m, v| m.min(v.abs()));
        if lmin == 0.0 {
            f64::INFINITY
        } else {
            lmax / lmin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::compute(&a).unwrap();
        assert!((eig.values()[0] - 3.0).abs() < 1e-12);
        assert!((eig.values()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let mut state = 42_u64;
        let mut r = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let b = Matrix::from_fn(7, 7, |_, _| r());
        let a = &b + &b.transpose();
        let eig = SymmetricEigen::compute(&a).unwrap();
        assert!(eig.reconstruct().max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 1.0]]).unwrap();
        let eig = SymmetricEigen::compute(&a).unwrap();
        let qtq = eig.vectors().transpose().matmul(eig.vectors()).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn eigen_equation_holds() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 3.0]]).unwrap();
        let eig = SymmetricEigen::compute(&a).unwrap();
        for j in 0..2 {
            let v = eig.vectors().col(j);
            let av = a.matvec(&v).unwrap();
            for i in 0..2 {
                assert!((av[i] - eig.values()[j] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn condition_number_diag() {
        let a = Matrix::from_diagonal(&[10.0, 1.0]);
        let eig = SymmetricEigen::compute(&a).unwrap();
        assert!((eig.condition_number() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEigen::compute(&Matrix::zeros(2, 3)).is_err());
    }
}
