//! Randomized truncated SVD (Halko–Martinsson–Tropp range finder).
//!
//! [`Rsvd`] computes the top-`r` singular triplets of an `m x n` matrix
//! in O(m·n·l) time (l = r + oversampling) instead of the one-sided
//! Jacobi kernel's O(m·n²) per sweep: sketch the range with a Gaussian
//! test matrix, tighten it with QR-re-orthonormalized block power
//! iterations, then run the exact Jacobi SVD on the small projected
//! matrix `B = Qᵀ·A`. Everything is deterministic: the test matrix
//! comes from a seeded splitmix64 stream, so the same input and
//! [`RsvdConfig`] always produce bit-identical factors.
//!
//! Two extras matter to the RPCA caller:
//!
//! - **Warm starts.** [`Rsvd::compute_warm`] seeds the subspace from a
//!   previous `Q` (the dominant subspace of inexact-ALM iterates drifts
//!   slowly), so one power pass usually suffices instead of two.
//! - **A residual certificate.** [`Rsvd::residual`] reports
//!   `‖A − Q·Qᵀ·A‖_F` (computed exactly from the Frobenius identity
//!   `‖A‖²_F = ‖Qᵀ·A‖²_F + ‖A − Q·Qᵀ·A‖²_F`), so callers can detect
//!   under-capture and either grow the subspace or fall back to the
//!   exact SVD.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::svd::Svd;

/// Configuration for the randomized range finder.
#[derive(Debug, Clone, PartialEq)]
pub struct RsvdConfig {
    /// Extra subspace columns beyond the requested rank. More columns
    /// buy capture accuracy at O(m·n) cost per column.
    pub oversample: usize,
    /// Block power iterations (each is one `A·Aᵀ` application with QR
    /// re-orthonormalization). 2 is a robust cold-start default; warm
    /// starts usually need only 1.
    pub power_iterations: usize,
    /// Seed for the deterministic Gaussian test matrix.
    pub seed: u64,
}

impl Default for RsvdConfig {
    fn default() -> Self {
        RsvdConfig {
            oversample: 8,
            power_iterations: 2,
            seed: 0x5eed_cafe,
        }
    }
}

/// A randomized truncated SVD `A ≈ U·Σ·Vᵀ` with `l = rank + oversample`
/// computed triplets, plus the captured subspace and an error
/// certificate.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, Rsvd, RsvdConfig, Svd};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Rank-2 matrix: the randomized SVD recovers both singular values.
/// let u = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[1.0, -1.0]])?;
/// let v = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 3.0]])?;
/// let a = u.matmul(&v)?;
/// let rsvd = Rsvd::compute(&a, 2, &RsvdConfig::default())?;
/// let exact = Svd::compute(&a)?;
/// assert!((rsvd.sigma()[0] - exact.sigma()[0]).abs() < 1e-10);
/// assert!((rsvd.sigma()[1] - exact.sigma()[1]).abs() < 1e-10);
/// // Rank 2 fully captured: the certificate sits at its ~1e-8·‖A‖_F
/// // floating-point cancellation floor rather than at zero.
/// assert!(rsvd.residual() < 1e-6 * a.norm_fro());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rsvd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
    subspace: Matrix,
    residual: f64,
}

impl Rsvd {
    /// Computes a randomized truncated SVD capturing (at least) the top
    /// `rank` triplets of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] for an empty matrix or
    /// `rank == 0`, and propagates QR/SVD failures.
    pub fn compute(a: &Matrix, rank: usize, config: &RsvdConfig) -> Result<Self> {
        Self::compute_warm(a, rank, None, config)
    }

    /// [`Rsvd::compute`] with a warm-started subspace: the leading
    /// columns of the sketch are taken from `warm` (a previous
    /// [`Rsvd::subspace`] with matching row count) and only the
    /// remainder is drawn fresh from the Gaussian stream. The power
    /// passes then tighten the combined subspace, so a slowly drifting
    /// dominant subspace (RPCA's inexact-ALM iterates) converges with a
    /// single pass.
    ///
    /// A `warm` matrix with mismatched rows (or zero columns) is
    /// ignored; at least one power pass always runs on a warm start so
    /// stale directions are re-projected through `A`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] for an empty matrix or
    /// `rank == 0`, and propagates QR/SVD failures.
    pub fn compute_warm(
        a: &Matrix,
        rank: usize,
        warm: Option<&Matrix>,
        config: &RsvdConfig,
    ) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument(
                "rsvd: empty matrix".to_string(),
            ));
        }
        if rank == 0 {
            return Err(LinalgError::InvalidArgument(
                "rsvd: rank must be at least 1".to_string(),
            ));
        }
        let l = (rank + config.oversample).clamp(1, m.min(n));
        let warm = warm.filter(|q| q.rows() == m && q.cols() > 0);

        // Sketch Y spanning (approximately) the range of A: warm
        // columns verbatim, the rest A·Ω with Gaussian Ω.
        let sketch = match warm {
            Some(q) => {
                let keep = q.cols().min(l);
                if keep == l {
                    q.submatrix(0, m, 0, l)
                } else {
                    let omega = gaussian(n, l - keep, config.seed);
                    let fresh = panel_matmul(a, &omega)?;
                    Matrix::from_fn(m, l, |i, j| {
                        if j < keep {
                            q[(i, j)]
                        } else {
                            fresh[(i, j - keep)]
                        }
                    })
                }
            }
            None => panel_matmul(a, &gaussian(n, l, config.seed))?,
        };
        let mut q = Qr::factor(&sketch)?.q_thin();

        // Block power iterations: Q ← orth(A·orth(Aᵀ·Q)). QR after each
        // half-step keeps the basis numerically orthonormal (plain
        // power iterations collapse onto the top singular vector).
        let passes = if warm.is_some() {
            config.power_iterations.max(1)
        } else {
            config.power_iterations
        };
        for _ in 0..passes {
            let z = q.transpose().matmul(a)?.transpose();
            let qz = Qr::factor(&z)?.q_thin();
            let y = panel_matmul(a, &qz)?;
            q = Qr::factor(&y)?.q_thin();
        }

        // Project to the small side and finish with the exact SVD:
        // B = Qᵀ·A is l x n, so the Jacobi kernel costs O(n·l²) per
        // sweep instead of O(m·n²).
        let b = q.transpose().matmul(a)?;
        let svd_b = Svd::compute(&b)?;
        let a_fro2: f64 = a.iter().map(|x| x * x).sum();
        let b_fro2: f64 = b.iter().map(|x| x * x).sum();
        let residual = (a_fro2 - b_fro2).max(0.0).sqrt();
        let u = q.matmul(svd_b.u())?;
        Ok(Rsvd {
            u,
            sigma: svd_b.sigma().to_vec(),
            v: svd_b.v().clone(),
            subspace: q,
            residual,
        })
    }

    /// Left singular vectors (`m x l`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Computed singular values (length `l`, non-increasing). Only the
    /// leading `rank` are accurate to working precision; the
    /// oversampling tail is an estimate used for adaptation decisions.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// Right singular vectors (`n x l`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// The captured orthonormal range basis `Q` (`m x l`) — feed this
    /// back into [`Rsvd::compute_warm`] to warm-start the next solve.
    pub fn subspace(&self) -> &Matrix {
        &self.subspace
    }

    /// Error certificate `‖A − Q·Qᵀ·A‖_F`: the Frobenius mass of `A`
    /// outside the captured subspace. An upper bound on every
    /// uncaptured singular value, so `residual() <= t` certifies that
    /// no discarded singular value exceeds `t`.
    ///
    /// Computed from the identity `‖A‖²_F − ‖Qᵀ·A‖²_F`, whose floating
    /// point cancellation leaves a noise floor of roughly
    /// `1e-8 · ‖A‖_F`; treat smaller values as "fully captured" rather
    /// than meaningful tail estimates.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Largest computed singular value (0.0 for an empty spectrum).
    pub fn spectral_norm(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Number of computed singular values strictly above the **absolute**
    /// threshold — the count singular-value shrinkage retains. Compare
    /// with [`Svd::rank`], which is relative to `σ_max`.
    pub fn rank_abs(&self, threshold: f64) -> usize {
        self.sigma.iter().filter(|&&s| s > threshold).count()
    }

    /// Reconstructs `U·Σ·Vᵀ` from the computed triplets.
    pub fn reconstruct(&self) -> Matrix {
        let us = Matrix::from_fn(self.u.rows(), self.sigma.len(), |i, j| {
            self.u[(i, j)] * self.sigma[j]
        });
        us.matmul_transpose_b(&self.v)
            .expect("rsvd factors have consistent shapes")
    }

    /// Applies soft thresholding to the singular values and
    /// reconstructs — the singular-value shrinkage operator used by
    /// RPCA. Triplets with `σ <= tau` contribute nothing, so the cost
    /// is O(m·n·r) with `r` the retained rank.
    pub fn shrink(&self, tau: f64) -> Matrix {
        let mut shrunk = Matrix::zeros(self.u.rows(), self.v.rows());
        for (j, &sig) in self.sigma.iter().enumerate() {
            let s = (sig - tau).max(0.0);
            if s == 0.0 {
                continue;
            }
            for i in 0..self.u.rows() {
                let uis = self.u[(i, j)] * s;
                for l in 0..self.v.rows() {
                    shrunk[(i, l)] += uis * self.v[(l, j)];
                }
            }
        }
        shrunk
    }
}

/// Deterministic standard-Gaussian test matrix via splitmix64 +
/// Box–Muller. Seeded, stateless across calls: the same `(rows, cols,
/// seed)` always yields the same matrix.
fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed ^ 0x6a09_e667_f3bc_c908;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    // (0, 1) open on both ends so ln() below is always finite.
    let mut uniform = move || ((next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let count = rows * cols;
    let mut data = Vec::with_capacity(count);
    while data.len() < count {
        let r = (-2.0 * uniform().ln()).sqrt();
        let theta = std::f64::consts::TAU * uniform();
        data.push(r * theta.cos());
        if data.len() < count {
            data.push(r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data).expect("sized exactly above")
}

/// Row-panel edge for the fan-out product: panels this tall amortize
/// thread hand-off while staying well inside L2 alongside the (skinny)
/// right operand.
#[cfg(any(feature = "parallel", test))]
const PANEL_ROWS: usize = 64;

/// `a * b` with the rows of `a` fanned out across threads in
/// [`PANEL_ROWS`]-row panels (the range finder's products are tall and
/// skinny: `m` large, `b` a few dozen columns wide).
///
/// Bit-identical to [`Matrix::matmul`]: each output row is produced by
/// the same blocked kernel over the same operands in the same
/// floating-point order regardless of which panel — or thread — it
/// lands in, and panels are reassembled in index order.
#[cfg(feature = "parallel")]
fn panel_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let (m, inner) = a.shape();
    if inner != b.rows() || m < 2 * PANEL_ROWS || flexcs_parallel::default_threads() == 1 {
        return a.matmul(b);
    }
    let panels = m.div_ceil(PANEL_ROWS);
    let blocks = flexcs_parallel::par_map_indices(panels, |p| {
        let r0 = p * PANEL_ROWS;
        let r1 = ((p + 1) * PANEL_ROWS).min(m);
        a.submatrix(r0, r1, 0, inner)
            .matmul(b)
            .expect("inner dimensions checked before fan-out")
    });
    let mut data = Vec::with_capacity(m * b.cols());
    for block in blocks {
        data.extend_from_slice(block.as_slice());
    }
    Matrix::from_vec(m, b.cols(), data)
}

#[cfg(not(feature = "parallel"))]
fn panel_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    a.matmul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic low-rank + small-noise test matrix.
    fn low_rank(m: usize, n: usize, rank: usize, noise: f64) -> Matrix {
        let u = Matrix::from_fn(m, rank, |i, r| ((i * (r + 2)) as f64 * 0.37).sin() + 0.1);
        let v = Matrix::from_fn(rank, n, |r, j| ((j * (r + 3)) as f64 * 0.23).cos() - 0.05);
        let mut a = u.matmul(&v).unwrap();
        if noise > 0.0 {
            let e = Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) as f64 * 0.71).sin() * noise);
            a += &e;
        }
        a
    }

    #[test]
    fn matches_exact_svd_on_low_rank_input() {
        for &(m, n) in &[(40usize, 30usize), (30, 40), (32, 32)] {
            let a = low_rank(m, n, 4, 0.0);
            let exact = Svd::compute(&a).unwrap();
            let rsvd = Rsvd::compute(&a, 4, &RsvdConfig::default()).unwrap();
            for j in 0..4 {
                assert!(
                    (rsvd.sigma()[j] - exact.sigma()[j]).abs() < 1e-9,
                    "{m}x{n} sigma[{j}]: {} vs {}",
                    rsvd.sigma()[j],
                    exact.sigma()[j]
                );
            }
            assert!(
                rsvd.reconstruct().max_abs_diff(&a).unwrap() < 1e-9,
                "{m}x{n} reconstruction"
            );
            // The certificate's cancellation floor is ~1e-8·‖A‖_F.
            assert!(
                rsvd.residual() < 1e-6 * a.norm_fro(),
                "{m}x{n} certificate {}",
                rsvd.residual()
            );
        }
    }

    #[test]
    fn certificate_reports_uncaptured_energy() {
        // Rank-8 matrix sketched with only rank 2 + no oversampling:
        // the certificate must report the missing tail, and it must
        // upper-bound every uncaptured singular value.
        let a = low_rank(36, 28, 8, 0.0);
        let cfg = RsvdConfig {
            oversample: 0,
            ..RsvdConfig::default()
        };
        let rsvd = Rsvd::compute(&a, 2, &cfg).unwrap();
        let exact = Svd::compute(&a).unwrap();
        assert!(rsvd.residual() > 1e-3, "residual {}", rsvd.residual());
        // ‖A − QQᵀA‖_F >= σ_3(A) when only 2 directions are captured.
        assert!(rsvd.residual() >= exact.sigma()[2] * 0.99);
    }

    #[test]
    fn warm_start_with_true_subspace_needs_one_pass() {
        let a = low_rank(48, 32, 3, 1e-9);
        let cold = Rsvd::compute(&a, 3, &RsvdConfig::default()).unwrap();
        // Perturb A slightly (next "frame") and reuse the subspace.
        let b = &a + &Matrix::from_fn(48, 32, |i, j| ((i + 2 * j) as f64 * 0.5).sin() * 1e-6);
        let cfg = RsvdConfig {
            power_iterations: 1,
            ..RsvdConfig::default()
        };
        let warm = Rsvd::compute_warm(&b, 3, Some(cold.subspace()), &cfg).unwrap();
        let exact = Svd::compute(&b).unwrap();
        for j in 0..3 {
            assert!(
                (warm.sigma()[j] - exact.sigma()[j]).abs() < 1e-7,
                "sigma[{j}]: {} vs {}",
                warm.sigma()[j],
                exact.sigma()[j]
            );
        }
    }

    #[test]
    fn warm_start_ignores_mismatched_shapes() {
        let a = low_rank(20, 16, 2, 0.0);
        let stale = Matrix::zeros(7, 3); // wrong row count
        let rsvd = Rsvd::compute_warm(&a, 2, Some(&stale), &RsvdConfig::default()).unwrap();
        assert!(rsvd.reconstruct().max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = low_rank(33, 27, 3, 1e-3);
        let cfg = RsvdConfig::default();
        let r1 = Rsvd::compute(&a, 3, &cfg).unwrap();
        let r2 = Rsvd::compute(&a, 3, &cfg).unwrap();
        assert_eq!(r1.sigma(), r2.sigma());
        assert_eq!(r1.u().as_slice(), r2.u().as_slice());
        assert_eq!(r1.v().as_slice(), r2.v().as_slice());
        assert_eq!(r1.subspace().as_slice(), r2.subspace().as_slice());
    }

    #[test]
    fn shrink_matches_exact_shrink_when_captured() {
        let a = low_rank(30, 30, 3, 0.0);
        let tau = Svd::compute(&a).unwrap().sigma()[1] * 0.5;
        let exact = Svd::compute(&a).unwrap().shrink(tau);
        let fast = Rsvd::compute(&a, 3, &RsvdConfig::default())
            .unwrap()
            .shrink(tau);
        assert!(exact.max_abs_diff(&fast).unwrap() < 1e-8);
    }

    #[test]
    fn rank_abs_counts_absolute_threshold() {
        let a = Matrix::from_diagonal(&[5.0, 3.0, 1.0, 0.2]);
        let rsvd = Rsvd::compute(&a, 4, &RsvdConfig::default()).unwrap();
        assert_eq!(rsvd.rank_abs(0.5), 3);
        assert_eq!(rsvd.rank_abs(4.0), 1);
        assert_eq!(rsvd.rank_abs(10.0), 0);
    }

    #[test]
    fn subspace_is_orthonormal() {
        let a = low_rank(40, 24, 5, 1e-2);
        let rsvd = Rsvd::compute(&a, 5, &RsvdConfig::default()).unwrap();
        let q = rsvd.subspace();
        let qtq = q.transpose().matmul(q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(q.cols())).unwrap() < 1e-10);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Rsvd::compute(&Matrix::zeros(0, 3), 1, &RsvdConfig::default()).is_err());
        assert!(Rsvd::compute(&Matrix::zeros(3, 3), 0, &RsvdConfig::default()).is_err());
    }

    #[test]
    fn zero_matrix_yields_zero_spectrum() {
        let rsvd = Rsvd::compute(&Matrix::zeros(12, 9), 2, &RsvdConfig::default()).unwrap();
        assert!(rsvd.sigma().iter().all(|&s| s == 0.0));
        assert!(rsvd.residual() == 0.0);
        assert_eq!(rsvd.rank_abs(0.0), 0);
    }

    #[test]
    fn gaussian_stream_is_seeded_and_plausible() {
        let g1 = gaussian(50, 20, 7);
        let g2 = gaussian(50, 20, 7);
        let g3 = gaussian(50, 20, 8);
        assert_eq!(g1.as_slice(), g2.as_slice());
        assert!(g1.as_slice() != g3.as_slice());
        // Standard-normal moments, loosely.
        let mean = g1.mean();
        let var = g1.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 999.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn panel_product_is_bit_identical_to_matmul() {
        // Shapes straddling the panel edge, including a remainder panel.
        for &m in &[PANEL_ROWS * 2, PANEL_ROWS * 3 + 17, 200] {
            let a = Matrix::from_fn(m, 40, |i, j| ((i * 13 + j * 7) as f64 * 0.011).sin());
            let b = Matrix::from_fn(40, 12, |i, j| ((i * 5 + j * 3) as f64 * 0.017).cos());
            let fast = panel_matmul(&a, &b).unwrap();
            let reference = a.matmul(&b).unwrap();
            assert_eq!(fast.as_slice(), reference.as_slice(), "{m} rows diverged");
        }
    }
}
