//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The CS solvers form small Gram systems `AᵀA x = Aᵀ b` on the active
//! support (OMP/CoSaMP least squares) and ADMM forms `(AᵀA + ρI)`; both are
//! SPD and solved fastest by Cholesky.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Examples
///
/// ```
/// use flexcs_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::factor(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, not checked.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
    /// strictly positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, i)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` by two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a wrong-length rhs.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky solve: expected rhs of length {n}, got {}",
                b.len()
            )));
        }
        let mut y = b.to_vec();
        self.solve_in_place(&mut y);
        Ok(y)
    }

    /// [`Cholesky::solve`] into a caller-owned buffer (resized to fit):
    /// the allocation-free variant used inside solver iteration loops.
    /// Results are bit-identical to [`Cholesky::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for a wrong-length rhs.
    pub fn solve_into(&self, b: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky solve: expected rhs of length {n}, got {}",
                b.len()
            )));
        }
        out.clear();
        out.extend_from_slice(b);
        self.solve_in_place(out);
        Ok(())
    }

    fn solve_in_place(&self, y: &mut [f64]) {
        let n = self.dim();
        // Forward: L y = b.
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
    }

    /// Log-determinant of the original matrix (`2·Σ log L_ii`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solves the SPD system `A·x = b` in one call.
///
/// # Errors
///
/// See [`Cholesky::factor`] and [`Cholesky::solve`].
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Cholesky::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_matches_hand_computation() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let expect =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[6.0, 1.0, 0.0], &[-8.0, 5.0, 3.0]]).unwrap();
        assert!(ch.l().max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn l_lt_reconstructs() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[5.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = [6.0, 4.0];
        let x_ch = solve_spd(&a, &b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (p, q) in x_ch.iter().zip(&x_lu) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diagonal(&[2.0, 8.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_len() {
        let ch = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
