//! The multi-tenant batched decode engine.
//!
//! ```text
//!   submit(tenant, frame) ──► bounded per-tenant FIFO queue
//!                                  │  (full ⇒ Submit::Rejected)
//!                  tenant token ──►│
//!        ┌─────────────────────────┴──────────────────────────┐
//!        │ work-stealing workers: pop own deque, steal others │
//!        │ claim tenant session ─► drain same-shape batch     │
//!        │ decode (warm, panic-guarded) ─► complete handles   │
//!        └────────────────────────────────────────────────────┘
//! ```
//!
//! Scheduling model: each registered tenant has a *home* worker; when a
//! frame lands in an empty (unscheduled) tenant queue, a tenant token
//! is pushed onto the home worker's deque. Workers pop their own deque
//! FIFO and steal from the back of other workers' deques when idle, so
//! load spreads without losing per-tenant locality. A token grants
//! exclusive access to the tenant's [`Session`]; the holder drains up
//! to `max_batch` *same-shape* frames in one claim (amortizing the
//! session's cached DCT plan, solver workspace, and warm-start state)
//! and re-enqueues the token if frames remain, so no tenant can starve
//! the others on its worker.
//!
//! Per-tenant decode order is always FIFO submission order and the
//! session is held by one worker at a time, so results are bit-identical
//! to decoding the tenant's stream serially — regardless of worker
//! count or stealing.

use crate::error::ServeError;
use crate::handle::{completion_pair, Completion, DecodedFrame, FrameHandle, FrameResult};
use crate::metrics::{EngineMetrics, LatencyReservoir, TenantMetrics};
use crate::session::{DecodeBackend, FrameRequest, Session, SessionConfig, WarmDecodeBackend};
use crate::tel;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` resolves to
    /// [`flexcs_parallel::default_threads`] (which honours the
    /// `FLEXCS_THREADS` override).
    pub workers: usize,
    /// Per-tenant queue capacity; a submit against a full queue returns
    /// [`Submit::Rejected`] (backpressure).
    pub queue_capacity: usize,
    /// Maximum frames drained into one same-shape batch.
    pub max_batch: usize,
    /// Global latency-reservoir capacity (per-tenant reservoirs hold
    /// 1/16th, minimum 1024).
    pub latency_reservoir: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 64,
            max_batch: 16,
            latency_reservoir: 1 << 17,
        }
    }
}

/// Outcome of [`Engine::submit`].
#[derive(Debug)]
pub enum Submit {
    /// The frame was queued; the handle resolves when it completes.
    Accepted(FrameHandle),
    /// The tenant's queue is full — backpressure. Resubmit later.
    Rejected {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
    },
}

impl Submit {
    /// Unwraps the handle of an accepted submission.
    pub fn accepted(self) -> Option<FrameHandle> {
        match self {
            Submit::Accepted(handle) => Some(handle),
            Submit::Rejected { .. } => None,
        }
    }

    /// Whether the submission was rejected by backpressure.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Submit::Rejected { .. })
    }
}

struct Job {
    req: FrameRequest,
    completion: Completion,
    sequence: u64,
    submitted_at: Instant,
}

#[derive(Default)]
struct TenantQueue {
    jobs: VecDeque<Job>,
    /// True while a token for this tenant sits in a deque or a worker
    /// holds the claim; guarantees at most one token per tenant.
    scheduled: bool,
    next_sequence: u64,
}

struct Tenant {
    id: usize,
    name: String,
    home: usize,
    queue: Mutex<TenantQueue>,
    session: Mutex<Session>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    latency: LatencyReservoir,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    decoded: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    batches: AtomicU64,
    batch_frames: AtomicU64,
    steals: AtomicU64,
}

struct Sched {
    /// One ready-token deque per worker, all behind a single lock (the
    /// critical sections are a few pointer moves; decodes dominate by
    /// orders of magnitude).
    deques: Mutex<Vec<VecDeque<usize>>>,
    available: Condvar,
    running: AtomicBool,
}

struct Inner {
    queue_capacity: usize,
    max_batch: usize,
    workers: usize,
    backend: Arc<dyn DecodeBackend>,
    tenants: RwLock<Vec<Arc<Tenant>>>,
    sched: Sched,
    counters: Counters,
    latency: LatencyReservoir,
    tenant_reservoir: usize,
}

/// The long-running multi-tenant decode engine.
///
/// # Examples
///
/// ```
/// use flexcs_core::SamplingPlan;
/// use flexcs_linalg::Matrix;
/// use flexcs_serve::{Engine, EngineConfig, FrameRequest, SessionConfig, Submit};
/// use flexcs_transform::Dct2d;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A DCT-sparse 8x8 frame sampled at 60 %.
/// let dct = Dct2d::new(8, 8)?;
/// let mut coeffs = Matrix::zeros(8, 8);
/// coeffs[(0, 0)] = 4.0;
/// coeffs[(1, 2)] = 1.5;
/// let frame = dct.inverse(&coeffs)?;
/// let plan = SamplingPlan::random_subset(64, 38, &[], 7)?;
///
/// let engine = Engine::new(EngineConfig::default());
/// let tenant = engine.register_tenant(SessionConfig::named("array-0"));
/// let submit = engine.submit(
///     tenant,
///     FrameRequest {
///         rows: 8,
///         cols: 8,
///         selected: plan.selected().to_vec(),
///         y: plan.measure(&frame.to_flat()),
///     },
/// )?;
/// let Submit::Accepted(handle) = submit else { unreachable!("queue empty") };
/// let decoded = handle.wait()?;
/// assert!(decoded.frame.max_abs_diff(&frame)? < 1e-2);
/// # Ok(())
/// # }
/// ```
pub struct Engine {
    inner: Arc<Inner>,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Engine {
    /// Starts the engine with the real warm decoder backend.
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_backend(config, Arc::new(WarmDecodeBackend))
    }

    /// Starts the engine with a custom decode backend (tests, benches).
    pub fn with_backend(config: EngineConfig, backend: Arc<dyn DecodeBackend>) -> Self {
        let workers = if config.workers == 0 {
            flexcs_parallel::default_threads()
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue_capacity: config.queue_capacity.max(1),
            max_batch: config.max_batch.max(1),
            workers,
            backend,
            tenants: RwLock::new(Vec::new()),
            sched: Sched {
                deques: Mutex::new(vec![VecDeque::new(); workers]),
                available: Condvar::new(),
                running: AtomicBool::new(true),
            },
            counters: Counters::default(),
            latency: LatencyReservoir::new(config.latency_reservoir.max(1024)),
            tenant_reservoir: (config.latency_reservoir / 16).max(1024),
        });
        let worker_handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flexcs-serve-{w}"))
                    .spawn(move || inner.worker_loop(w))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            inner,
            worker_handles: Mutex::new(worker_handles),
            stopped: AtomicBool::new(false),
        }
    }

    /// Number of worker threads the engine runs.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Registers a tenant and returns its id. Sessions live for the
    /// engine's lifetime; ids are dense and assigned in registration
    /// order.
    pub fn register_tenant(&self, config: SessionConfig) -> usize {
        let mut tenants = self
            .inner
            .tenants
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let id = tenants.len();
        tenants.push(Arc::new(Tenant {
            id,
            name: config.name.clone(),
            home: id % self.inner.workers,
            queue: Mutex::new(TenantQueue::default()),
            session: Mutex::new(Session::new(config)),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            latency: LatencyReservoir::new(self.inner.tenant_reservoir),
        }));
        id
    }

    /// Submits a frame for the tenant. Returns [`Submit::Rejected`]
    /// when the tenant's bounded queue is full (backpressure); the
    /// caller decides whether to retry, drop, or throttle.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for an unregistered id,
    /// [`ServeError::BadRequest`] for malformed requests, and
    /// [`ServeError::EngineStopped`] after shutdown.
    pub fn submit(&self, tenant: usize, req: FrameRequest) -> Result<Submit, ServeError> {
        if !self.inner.sched.running.load(Ordering::Acquire) {
            return Err(ServeError::EngineStopped);
        }
        req.validate()?;
        let tenant = self.inner.tenant(tenant)?;
        let (handle, completion) = completion_pair();
        let (depth, needs_token) = {
            let mut q = tenant.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.jobs.len() >= self.inner.queue_capacity {
                let depth = q.jobs.len();
                drop(q);
                tenant.rejected.fetch_add(1, Ordering::Relaxed);
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                tel::counter("serve.rejected", 1);
                return Ok(Submit::Rejected { queue_depth: depth });
            }
            let sequence = q.next_sequence;
            q.next_sequence += 1;
            q.jobs.push_back(Job {
                req,
                completion,
                sequence,
                submitted_at: Instant::now(),
            });
            let needs_token = if q.scheduled {
                false
            } else {
                q.scheduled = true;
                true
            };
            (q.jobs.len(), needs_token)
        };
        tenant.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if tel::enabled() {
            tel::counter("serve.submitted", 1);
            tel::histogram("serve.queue_depth", depth as f64);
        }
        if needs_token {
            self.inner.push_token(tenant.home, tenant.id);
        }
        Ok(Submit::Accepted(handle))
    }

    /// Point-in-time metrics snapshot (queue depths, throughput
    /// counters, latency percentiles).
    pub fn metrics(&self) -> EngineMetrics {
        self.inner.metrics()
    }

    /// Stops accepting new frames, drains every queued frame, and joins
    /// the workers. Idempotent; also runs on drop. Every handle issued
    /// before shutdown resolves.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.sched.running.store(false, Ordering::Release);
        // Lock-step with waiting workers: once we hold (and release)
        // the deque lock, every worker has either observed
        // `running == false` or is parked in `wait` where `notify_all`
        // reaches it — no lost-wakeup window.
        drop(
            self.inner
                .sched
                .deques
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        self.inner.sched.available.notify_all();
        let handles = std::mem::take(
            &mut *self
                .worker_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for handle in handles {
            let _ = handle.join();
        }
        // A submit racing the shutdown can slip a job in after the
        // workers' final drain pass; fail it rather than strand its
        // waiter until the engine drops.
        let tenants = self.inner.tenants.read().unwrap_or_else(|e| e.into_inner());
        for tenant in tenants.iter() {
            let mut q = tenant.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.scheduled = false;
            for job in q.jobs.drain(..) {
                job.completion.complete(Err(ServeError::EngineStopped));
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.inner.workers)
            .field("queue_capacity", &self.inner.queue_capacity)
            .field("max_batch", &self.inner.max_batch)
            .finish_non_exhaustive()
    }
}

impl Inner {
    fn tenant(&self, id: usize) -> Result<Arc<Tenant>, ServeError> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
            .ok_or(ServeError::UnknownTenant(id))
    }

    fn push_token(&self, worker: usize, tenant: usize) {
        {
            let mut deques = self.sched.deques.lock().unwrap_or_else(|e| e.into_inner());
            deques[worker].push_back(tenant);
        }
        self.sched.available.notify_one();
    }

    fn worker_loop(&self, w: usize) {
        loop {
            let claimed = {
                let mut deques = self.sched.deques.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(t) = deques[w].pop_front() {
                        break Some((t, false));
                    }
                    // Steal from the back of the first non-empty peer
                    // deque (scanning round-robin from our right-hand
                    // neighbour): the back is the peer's coldest work,
                    // so its own locality is disturbed least.
                    let n = deques.len();
                    let stolen = (1..n)
                        .map(|k| (w + k) % n)
                        .find_map(|v| deques[v].pop_back());
                    if let Some(t) = stolen {
                        break Some((t, true));
                    }
                    if !self.sched.running.load(Ordering::Acquire) {
                        break None;
                    }
                    deques = self
                        .sched
                        .available
                        .wait(deques)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some((tenant_id, stolen)) = claimed else {
                return;
            };
            if stolen {
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                tel::counter("serve.steals", 1);
            }
            self.process_tenant(tenant_id, w);
        }
    }

    /// Claims the tenant's session, drains one same-shape batch, and
    /// decodes it. Re-enqueues the tenant token if frames remain so
    /// deep queues interleave fairly with other tenants.
    fn process_tenant(&self, tenant_id: usize, w: usize) {
        let Ok(tenant) = self.tenant(tenant_id) else {
            return;
        };
        let mut session = tenant.session.lock().unwrap_or_else(|e| e.into_inner());
        let batch = {
            let mut q = tenant.queue.lock().unwrap_or_else(|e| e.into_inner());
            let mut batch = Vec::new();
            if let Some(first) = q.jobs.pop_front() {
                let shape = first.req.shape();
                batch.push(first);
                while batch.len() < self.max_batch
                    && q.jobs.front().is_some_and(|j| j.req.shape() == shape)
                {
                    batch.push(q.jobs.pop_front().expect("front checked non-empty"));
                }
            }
            if batch.is_empty() {
                q.scheduled = false;
                return;
            }
            batch
        };
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .batch_frames
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if tel::enabled() {
            tel::counter("serve.batches", 1);
            tel::histogram("serve.batch_occupancy", batch.len() as f64);
        }
        for job in batch {
            self.decode_job(&tenant, &mut session, job);
        }
        drop(session);
        let more = {
            let mut q = tenant.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.jobs.is_empty() {
                q.scheduled = false;
                false
            } else {
                true
            }
        };
        if more {
            self.push_token(w, tenant_id);
        }
    }

    /// Decodes one frame under a panic guard: a panicking solver marks
    /// only this frame failed (and resets the session's possibly-torn
    /// warm state) instead of killing the worker and wedging the queue.
    fn decode_job(&self, tenant: &Tenant, session: &mut Session, job: Job) {
        let Job {
            req,
            completion,
            sequence,
            submitted_at,
        } = job;
        let decoded = catch_unwind(AssertUnwindSafe(|| self.backend.decode(&req, session)));
        session.note_frame();
        let latency = submitted_at.elapsed();
        let outcome: FrameResult = match decoded {
            Ok(Ok(rec)) => {
                self.counters.decoded.fetch_add(1, Ordering::Relaxed);
                Ok(DecodedFrame {
                    tenant: tenant.id,
                    sequence,
                    frame: rec.frame,
                    report: rec.report,
                    latency,
                })
            }
            Ok(Err(e)) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Decode(e))
            }
            Err(payload) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                self.counters.panicked.fetch_add(1, Ordering::Relaxed);
                tel::counter("serve.panics", 1);
                session.reset_after_panic();
                Err(ServeError::DecodePanic(panic_message(payload.as_ref())))
            }
        };
        tenant.completed.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        tenant.latency.record(nanos);
        self.latency.record(nanos);
        if tel::enabled() {
            tel::counter("serve.frames", 1);
            tel::histogram("serve.latency_ms", nanos as f64 / 1e6);
            tel::histogram(
                &format!("serve.tenant.{}.latency_ms", tenant.name),
                nanos as f64 / 1e6,
            );
        }
        completion.complete(outcome);
    }

    fn metrics(&self) -> EngineMetrics {
        let tenants = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        let per_tenant: Vec<TenantMetrics> = tenants
            .iter()
            .map(|t| TenantMetrics {
                tenant: t.id,
                name: t.name.clone(),
                submitted: t.submitted.load(Ordering::Relaxed),
                rejected: t.rejected.load(Ordering::Relaxed),
                completed: t.completed.load(Ordering::Relaxed),
                queue_depth: t.queue.lock().unwrap_or_else(|e| e.into_inner()).jobs.len(),
                p50_ms: t.latency.percentile_ms(0.50),
                p99_ms: t.latency.percentile_ms(0.99),
            })
            .collect();
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let batch_frames = self.counters.batch_frames.load(Ordering::Relaxed);
        EngineMetrics {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            decoded: self.counters.decoded.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            panicked: self.counters.panicked.load(Ordering::Relaxed),
            batches,
            steals: self.counters.steals.load(Ordering::Relaxed),
            mean_batch_occupancy: (batches > 0).then(|| batch_frames as f64 / batches as f64),
            p50_ms: self.latency.percentile_ms(0.50),
            p99_ms: self.latency.percentile_ms(0.99),
            tenants: per_tenant,
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcs_core::{Decoder, Reconstruction, SamplingPlan};
    use flexcs_linalg::Matrix;
    use flexcs_solver::SolveReport;
    use flexcs_transform::Dct2d;
    use std::time::Duration;

    fn sparse_frame(rows: usize, cols: usize) -> Matrix {
        let dct = Dct2d::new(rows, cols).unwrap();
        let mut coeffs = Matrix::zeros(rows, cols);
        coeffs[(0, 0)] = 5.0;
        coeffs[(1, 1)] = 2.0;
        coeffs[(2, 0)] = -1.5;
        dct.inverse(&coeffs).unwrap()
    }

    fn request(frame: &Matrix, m: usize, seed: u64) -> FrameRequest {
        let (rows, cols) = (frame.rows(), frame.cols());
        let plan = SamplingPlan::random_subset(rows * cols, m, &[], seed).unwrap();
        FrameRequest {
            rows,
            cols,
            selected: plan.selected().to_vec(),
            y: plan.measure(&frame.to_flat()),
        }
    }

    #[test]
    fn engine_decode_matches_direct_decoder() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let tenant = engine.register_tenant(SessionConfig::named("t0"));
        let frame = sparse_frame(8, 8);
        let req = request(&frame, 40, 11);
        let direct = Decoder::default()
            .reconstruct(8, 8, &req.selected, &req.y)
            .unwrap();
        let handle = engine.submit(tenant, req).unwrap().accepted().unwrap();
        let decoded = handle.wait().unwrap();
        assert_eq!(decoded.frame, direct.frame, "service path is bit-identical");
        assert_eq!(decoded.sequence, 0);
        let m = engine.metrics();
        assert_eq!(m.decoded, 1);
        assert_eq!(m.failed, 0);
        assert!(m.p50_ms.is_some());
    }

    #[test]
    fn unknown_tenant_and_bad_requests_are_rejected_eagerly() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let frame = sparse_frame(8, 8);
        assert!(matches!(
            engine.submit(3, request(&frame, 40, 1)),
            Err(ServeError::UnknownTenant(3))
        ));
        let tenant = engine.register_tenant(SessionConfig::default());
        let mut bad = request(&frame, 40, 1);
        bad.y.pop();
        assert!(matches!(
            engine.submit(tenant, bad),
            Err(ServeError::BadRequest(_))
        ));
    }

    /// Backend that parks decodes until the test releases a gate.
    struct GatedBackend {
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    impl DecodeBackend for GatedBackend {
        fn decode(
            &self,
            req: &FrameRequest,
            _session: &mut Session,
        ) -> flexcs_core::Result<Reconstruction> {
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(Reconstruction {
                frame: Matrix::zeros(req.rows, req.cols),
                coefficients: Matrix::zeros(req.rows, req.cols),
                report: SolveReport::new(1, 0.0, true, 0.0),
            })
        }
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let engine = Engine::with_backend(
            EngineConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 1,
                ..EngineConfig::default()
            },
            Arc::new(GatedBackend {
                gate: Arc::clone(&gate),
            }),
        );
        let tenant = engine.register_tenant(SessionConfig::named("bp"));
        let frame = sparse_frame(4, 4);
        let first = engine.submit(tenant, request(&frame, 10, 1)).unwrap();
        let h1 = first.accepted().expect("empty queue accepts");
        // Wait until the worker has claimed the first frame (queue
        // drains to 0) so the next accept/reject pair is deterministic.
        while engine.metrics().tenants[0].queue_depth > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        let second = engine.submit(tenant, request(&frame, 10, 2)).unwrap();
        let h2 = second.accepted().expect("one slot free while decoding");
        let third = engine.submit(tenant, request(&frame, 10, 3)).unwrap();
        assert!(third.is_rejected(), "capacity-1 queue rejects the third");
        let m = engine.metrics();
        assert_eq!(m.rejected, 1);
        // Open the gate; both accepted frames must complete.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
    }

    #[test]
    fn same_shape_frames_batch_together() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let engine = Engine::with_backend(
            EngineConfig {
                workers: 1,
                queue_capacity: 16,
                max_batch: 8,
                ..EngineConfig::default()
            },
            Arc::new(GatedBackend {
                gate: Arc::clone(&gate),
            }),
        );
        let tenant = engine.register_tenant(SessionConfig::named("batch"));
        let small = sparse_frame(4, 4);
        let big = sparse_frame(8, 8);
        let mut handles = Vec::new();
        // Hold the worker on a sacrificial first frame so the rest of
        // the queue builds up and drains as shaped batches.
        handles.push(
            engine
                .submit(tenant, request(&small, 10, 0))
                .unwrap()
                .accepted()
                .unwrap(),
        );
        while engine.metrics().tenants[0].queue_depth > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        for seed in 1..=4 {
            handles.push(
                engine
                    .submit(tenant, request(&small, 10, seed))
                    .unwrap()
                    .accepted()
                    .unwrap(),
            );
        }
        for seed in 5..=6 {
            handles.push(
                engine
                    .submit(tenant, request(&big, 40, seed))
                    .unwrap()
                    .accepted()
                    .unwrap(),
            );
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let mut sequences = Vec::new();
        for h in handles {
            sequences.push(h.wait().unwrap().sequence);
        }
        assert_eq!(sequences, vec![0, 1, 2, 3, 4, 5, 6], "FIFO per tenant");
        let m = engine.metrics();
        // 1 sacrificial + one 4-frame same-shape batch + one 2-frame
        // batch at the shape boundary = 3 batches.
        assert_eq!(m.batches, 3, "same-shape batching groups the queue");
        assert_eq!(m.mean_batch_occupancy, Some(7.0 / 3.0));
    }

    #[test]
    fn shutdown_drains_queued_frames_and_stops_intake() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let tenant = engine.register_tenant(SessionConfig::named("drain"));
        let frame = sparse_frame(8, 8);
        let handles: Vec<FrameHandle> = (0..6)
            .map(|seed| {
                engine
                    .submit(tenant, request(&frame, 40, seed))
                    .unwrap()
                    .accepted()
                    .unwrap()
            })
            .collect();
        engine.shutdown();
        for h in handles {
            assert!(h.wait().is_ok(), "queued frames drain on shutdown");
        }
        assert!(matches!(
            engine.submit(tenant, request(&frame, 40, 99)),
            Err(ServeError::EngineStopped)
        ));
        engine.shutdown(); // idempotent
    }

    #[test]
    fn many_tenants_spread_over_workers() {
        let engine = Engine::new(EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        });
        let frame = sparse_frame(8, 8);
        let handles: Vec<FrameHandle> = (0..9)
            .map(|i| {
                let t = engine.register_tenant(SessionConfig::named(format!("t{i}")));
                engine
                    .submit(t, request(&frame, 40, i as u64))
                    .unwrap()
                    .accepted()
                    .unwrap()
            })
            .collect();
        for h in handles {
            assert!(h.wait().is_ok());
        }
        let m = engine.metrics();
        assert_eq!(m.decoded, 9);
        assert_eq!(m.tenants.len(), 9);
        assert!(m.tenants.iter().all(|t| t.completed == 1));
    }
}
