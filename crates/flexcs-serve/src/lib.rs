//! # flexcs-serve
//!
//! A long-running, std-only **multi-tenant batched decode engine** for
//! the flexcs stack — the throughput tier that turns the per-frame
//! decode optimizations (cached `Dct2d` plans, zero-allocation
//! `SolveWorkspace` arenas, cross-frame warm starts) into sustained
//! frames-per-second under concurrent load from many sensor arrays.
//!
//! ## Architecture
//!
//! - **[`Session`]** — per-tenant state: the tenant's [`Decoder`]
//!   (plan cache included) plus its [`DecodeWarmState`] (workspace +
//!   previous solution + cached spectral norm). Owned exclusively by
//!   one worker at a time; frames decode in FIFO submission order, so
//!   per-tenant results are bit-identical to a serial decode of the
//!   same stream.
//! - **[`Engine`]** — bounded per-tenant queues with backpressure
//!   ([`Submit::Rejected`] when full), a work-stealing scheduler over
//!   `flexcs-parallel`-sized worker threads, and same-shape batching
//!   that amortizes plan/workspace reuse across consecutive frames.
//! - **[`FrameHandle`]** — completion handle routed back to the
//!   submitter; drop-safe on the worker side (a lost worker resolves
//!   its claimed frames with [`ServeError::WorkerLost`] instead of
//!   stranding waiters).
//! - **[`LargeFrameSession`]** — megapixel session mode: one tenant
//!   frame, tiled by a [`BlockGrid`], fans out to per-block subtasks
//!   across cold shard tenants and reassembles (overlap-and-average)
//!   before completion — bit-identical to `flexcs_core::BlockPipeline`
//!   for any shard count.
//! - **Metrics** — engine-native throughput counters and latency
//!   percentile reservoirs ([`EngineMetrics`]); with the `telemetry`
//!   feature the same events also flow to the installed
//!   `flexcs_telemetry::Recorder` (`serve.*` counters/histograms).
//!
//! Decodes are panic-guarded: a panicking solver fails only its own
//! frame (and resets the tenant's warm state) — the worker, the queue,
//! and every other tenant keep running.
//!
//! ## Example
//!
//! See [`Engine`] for an end-to-end submit/decode/wait example.
//!
//! [`Decoder`]: flexcs_core::Decoder
//! [`DecodeWarmState`]: flexcs_core::DecodeWarmState
//! [`BlockGrid`]: flexcs_core::BlockGrid

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod handle;
mod large;
mod metrics;
mod session;
mod tel;

pub use engine::{Engine, EngineConfig, Submit};
pub use error::ServeError;
pub use handle::{DecodedFrame, FrameHandle, FrameResult};
pub use large::{LargeDecodedFrame, LargeFrameConfig, LargeFrameHandle, LargeFrameSession};
pub use metrics::{EngineMetrics, TenantMetrics};
pub use session::{DecodeBackend, FrameRequest, Session, SessionConfig, WarmDecodeBackend};
