//! Per-tenant decode sessions and the pluggable decode backend.
//!
//! A [`Session`] owns everything expensive a tenant's decodes can
//! amortize: the tenant's [`Decoder`] (whose internal `Dct2d` plan
//! cache persists across frames), and a [`DecodeWarmState`] carrying
//! the solver workspace arena plus the previous solution and cached
//! spectral norm. The engine guarantees exclusive access — a session
//! is locked by exactly one worker at a time and its frames are
//! decoded in FIFO submission order — so per-tenant results are
//! bit-identical to running the same sequence serially, regardless of
//! how many workers the engine runs or which worker stole the batch.

use crate::error::ServeError;
use crate::tel;
use flexcs_core::{
    AdaptiveConfig, AdaptivePipeline, DecodeWarmState, Decoder, Reconstruction, TierCounts,
};

/// A frame submitted for decoding: measurements taken at a subset of
/// pixel indices of a `rows x cols` frame (the paper's identity-subset
/// scan).
#[derive(Debug, Clone)]
pub struct FrameRequest {
    /// Frame height.
    pub rows: usize,
    /// Frame width.
    pub cols: usize,
    /// Sampled pixel indices, ascending (the sampling plan Φ_M).
    pub selected: Vec<usize>,
    /// Measurements at `selected`, same length.
    pub y: Vec<f64>,
}

impl FrameRequest {
    /// Cheap structural validation done at submit time, before the
    /// request ever reaches a worker.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ServeError::BadRequest(format!(
                "frame shape {}x{} has a zero dimension",
                self.rows, self.cols
            )));
        }
        if self.selected.len() != self.y.len() {
            return Err(ServeError::BadRequest(format!(
                "{} selected indices but {} measurements",
                self.selected.len(),
                self.y.len()
            )));
        }
        if self.selected.is_empty() {
            return Err(ServeError::BadRequest("no measurements".to_string()));
        }
        Ok(())
    }

    /// Shape key used by the scheduler's same-shape batching.
    pub(crate) fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Configuration for one tenant session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Human-readable tenant name (telemetry labels).
    pub name: String,
    /// Decoder configuration the tenant's frames run through.
    pub decoder: Decoder,
    /// Seed each solve from the tenant's previous solution (cross-frame
    /// warm starts). On by default; the first frame after a shape
    /// change runs cold automatically.
    pub warm_decode: bool,
    /// Event-driven adaptive tier routing: when set, each frame is
    /// gated by the O(M) change detector and served by the cheapest
    /// tier (previous-frame reuse, budget-capped delta decode, greedy
    /// fast tier, or full decode). Requires `warm_decode`; the
    /// config's `frame_budget_us` doubles as the session's per-frame
    /// latency budget. `None` (the default) decodes every frame in
    /// full.
    pub adaptive: Option<AdaptiveConfig>,
}

impl SessionConfig {
    /// Default session (FISTA decoder, warm decode on) with a name.
    pub fn named(name: impl Into<String>) -> Self {
        SessionConfig {
            name: name.into(),
            decoder: Decoder::default(),
            warm_decode: true,
            adaptive: None,
        }
    }

    /// Replaces the decoder (builder style).
    #[must_use]
    pub fn with_decoder(mut self, decoder: Decoder) -> Self {
        self.decoder = decoder;
        self
    }

    /// Disables cross-frame warm starts (builder style). Also drops any
    /// adaptive tier routing, which depends on the warm state.
    #[must_use]
    pub fn cold(mut self) -> Self {
        self.warm_decode = false;
        self.adaptive = None;
        self
    }

    /// Enables adaptive tier routing (builder style); implies warm
    /// decodes.
    #[must_use]
    pub fn with_adaptive(mut self, config: AdaptiveConfig) -> Self {
        self.warm_decode = true;
        self.adaptive = Some(config);
        self
    }

    /// Sets the per-frame latency budget of the adaptive tier in
    /// microseconds (builder style): the delta tier's iteration budget
    /// is steered to keep decode time under it. Enables adaptive
    /// routing with defaults when not already configured.
    #[must_use]
    pub fn with_frame_budget_us(mut self, budget_us: f64) -> Self {
        let mut cfg = self.adaptive.take().unwrap_or_default();
        cfg.frame_budget_us = Some(budget_us);
        self.with_adaptive(cfg)
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::named("tenant")
    }
}

/// Live per-tenant state, exclusively held by one worker at a time.
#[derive(Debug)]
pub struct Session {
    name: String,
    decoder: Decoder,
    warm: DecodeWarmState,
    warm_decode: bool,
    adaptive: Option<AdaptivePipeline>,
    frames_decoded: u64,
}

impl Session {
    pub(crate) fn new(config: SessionConfig) -> Self {
        Session {
            name: config.name,
            decoder: config.decoder,
            warm: DecodeWarmState::new(),
            warm_decode: config.warm_decode,
            adaptive: config.adaptive.map(AdaptivePipeline::new),
            frames_decoded: 0,
        }
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's decoder (plan cache included).
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// Whether this session seeds solves from the previous solution.
    pub fn warm_decode(&self) -> bool {
        self.warm_decode
    }

    /// Split borrow for warm decodes: the decoder plus the mutable
    /// warm-start state.
    pub fn warm_parts(&mut self) -> (&Decoder, &mut DecodeWarmState) {
        (&self.decoder, &mut self.warm)
    }

    /// Split borrow for adaptive decodes: decoder, warm state and the
    /// tier pipeline (when the session enabled it).
    pub fn adaptive_parts(
        &mut self,
    ) -> (
        &Decoder,
        &mut DecodeWarmState,
        Option<&mut AdaptivePipeline>,
    ) {
        (&self.decoder, &mut self.warm, self.adaptive.as_mut())
    }

    /// Per-tier frame counts of the adaptive router, when enabled.
    pub fn tier_counts(&self) -> Option<TierCounts> {
        self.adaptive.as_ref().map(|p| p.tier_counts())
    }

    /// Frames this session has decoded (successfully or not).
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Solves seeded from a previous solution so far.
    pub fn warm_starts(&self) -> u64 {
        self.warm.warm_starts()
    }

    pub(crate) fn note_frame(&mut self) {
        self.frames_decoded += 1;
    }

    /// Called after a decode panic: the workspace, carried solution and
    /// adaptive reference frame may be mid-update, so the next solve
    /// must run cold on fresh buffers rather than inherit torn state.
    pub(crate) fn reset_after_panic(&mut self) {
        self.warm = DecodeWarmState::new();
        if let Some(pipeline) = self.adaptive.as_mut() {
            pipeline.reset();
        }
    }
}

/// Pluggable decode implementation.
///
/// The engine routes every frame through the session's backend; the
/// default [`WarmDecodeBackend`] calls the real decoder. Tests inject
/// failing or panicking backends to exercise the scheduler's fault
/// paths, and benches inject instrumented ones.
pub trait DecodeBackend: Send + Sync {
    /// Decodes one frame using (and updating) the tenant's session
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates decoder failures; the engine maps them onto
    /// [`ServeError::Decode`] for the frame's handle.
    fn decode(
        &self,
        req: &FrameRequest,
        session: &mut Session,
    ) -> flexcs_core::Result<Reconstruction>;
}

/// Default backend: the flexcs-core decoder. Sessions with an adaptive
/// tier route each frame through the change-gated pipeline (and emit
/// `serve.tier.{static,delta,event_greedy,event_full}` counters);
/// warm sessions seed from the previous solution; cold sessions decode
/// from scratch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmDecodeBackend;

impl DecodeBackend for WarmDecodeBackend {
    fn decode(
        &self,
        req: &FrameRequest,
        session: &mut Session,
    ) -> flexcs_core::Result<Reconstruction> {
        if session.warm_decode() {
            let (decoder, warm, adaptive) = session.adaptive_parts();
            if let Some(pipeline) = adaptive {
                let (rec, tier) =
                    pipeline.decode(decoder, req.rows, req.cols, &req.selected, &req.y, warm)?;
                if tel::enabled() {
                    tel::counter(&format!("serve.tier.{}", tier.name()), 1);
                }
                return Ok(rec);
            }
            decoder.reconstruct_warm(req.rows, req.cols, &req.selected, &req.y, warm)
        } else {
            session
                .decoder()
                .reconstruct(req.rows, req.cols, &req.selected, &req.y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_malformed_requests() {
        let bad_shape = FrameRequest {
            rows: 0,
            cols: 4,
            selected: vec![0],
            y: vec![1.0],
        };
        assert!(matches!(
            bad_shape.validate(),
            Err(ServeError::BadRequest(_))
        ));
        let mismatched = FrameRequest {
            rows: 4,
            cols: 4,
            selected: vec![0, 1],
            y: vec![1.0],
        };
        assert!(matches!(
            mismatched.validate(),
            Err(ServeError::BadRequest(_))
        ));
        let empty = FrameRequest {
            rows: 4,
            cols: 4,
            selected: vec![],
            y: vec![],
        };
        assert!(matches!(empty.validate(), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn session_resets_warm_state_after_panic() {
        let mut s = Session::new(SessionConfig::named("t"));
        s.note_frame();
        assert_eq!(s.frames_decoded(), 1);
        s.reset_after_panic();
        assert_eq!(s.warm_starts(), 0);
    }

    use flexcs_core::SamplingPlan;
    use flexcs_linalg::Matrix;
    use flexcs_transform::Dct2d;

    /// A DCT-sparse 8x8 frame whose dominant coefficient scales with
    /// `dc`, plus its measurements under a fixed plan.
    fn frame_request(dc: f64) -> FrameRequest {
        let dct = Dct2d::new(8, 8).unwrap();
        let mut coeffs = Matrix::zeros(8, 8);
        coeffs[(0, 0)] = 5.0 * dc;
        coeffs[(0, 1)] = 2.0;
        coeffs[(1, 0)] = -1.5;
        coeffs[(2, 2)] = 1.0;
        let frame = dct.inverse(&coeffs).unwrap();
        let plan = SamplingPlan::random_subset(64, 40, &[], 23).unwrap();
        FrameRequest {
            rows: 8,
            cols: 8,
            selected: plan.selected().to_vec(),
            y: plan.measure(&frame.to_flat()),
        }
    }

    #[test]
    fn adaptive_session_routes_static_and_delta_tiers() {
        let mut s = Session::new(
            SessionConfig::named("adaptive").with_adaptive(flexcs_core::AdaptiveConfig::default()),
        );
        let backend = WarmDecodeBackend;
        let hold = frame_request(1.0);
        backend.decode(&hold, &mut s).unwrap(); // event (first frame)
        backend.decode(&hold, &mut s).unwrap(); // static
        backend.decode(&hold, &mut s).unwrap(); // static
        backend.decode(&frame_request(1.12), &mut s).unwrap(); // drift
        let counts = s.tier_counts().unwrap();
        assert_eq!(counts.static_frames, 2, "{counts:?}");
        assert_eq!(counts.delta, 1, "{counts:?}");
        assert_eq!(counts.event_greedy + counts.event_full, 1, "{counts:?}");
    }

    #[test]
    fn static_tier_returns_previous_reconstruction() {
        let mut s = Session::new(
            SessionConfig::named("adaptive").with_adaptive(flexcs_core::AdaptiveConfig::default()),
        );
        let backend = WarmDecodeBackend;
        let hold = frame_request(1.0);
        let first = backend.decode(&hold, &mut s).unwrap();
        let second = backend.decode(&hold, &mut s).unwrap();
        assert_eq!(first.frame.as_slice(), second.frame.as_slice());
        assert_eq!(s.tier_counts().unwrap().static_frames, 1);
    }

    #[test]
    fn cold_builder_drops_adaptive_routing() {
        let cfg = SessionConfig::named("t")
            .with_adaptive(flexcs_core::AdaptiveConfig::default())
            .cold();
        assert!(cfg.adaptive.is_none());
        assert!(!cfg.warm_decode);
        let s = Session::new(cfg);
        assert!(s.tier_counts().is_none());
    }

    #[test]
    fn frame_budget_builder_enables_adaptive() {
        let cfg = SessionConfig::named("t").with_frame_budget_us(500.0);
        let adaptive = cfg.adaptive.as_ref().unwrap();
        assert_eq!(adaptive.frame_budget_us, Some(500.0));
        assert!(cfg.warm_decode);
    }

    #[test]
    fn panic_reset_forgets_adaptive_reference_frame() {
        let mut s = Session::new(
            SessionConfig::named("adaptive").with_adaptive(flexcs_core::AdaptiveConfig::default()),
        );
        let backend = WarmDecodeBackend;
        let hold = frame_request(1.0);
        backend.decode(&hold, &mut s).unwrap();
        backend.decode(&hold, &mut s).unwrap();
        assert_eq!(s.tier_counts().unwrap().static_frames, 1);
        s.reset_after_panic();
        // The reference frame is gone: the identical measurements must
        // decode in full again rather than reuse possibly-torn state.
        backend.decode(&hold, &mut s).unwrap();
        let counts = s.tier_counts().unwrap();
        assert_eq!(counts.static_frames, 1, "{counts:?}");
        assert_eq!(counts.event_greedy + counts.event_full, 2, "{counts:?}");
    }
}
