//! Per-tenant decode sessions and the pluggable decode backend.
//!
//! A [`Session`] owns everything expensive a tenant's decodes can
//! amortize: the tenant's [`Decoder`] (whose internal `Dct2d` plan
//! cache persists across frames), and a [`DecodeWarmState`] carrying
//! the solver workspace arena plus the previous solution and cached
//! spectral norm. The engine guarantees exclusive access — a session
//! is locked by exactly one worker at a time and its frames are
//! decoded in FIFO submission order — so per-tenant results are
//! bit-identical to running the same sequence serially, regardless of
//! how many workers the engine runs or which worker stole the batch.

use crate::error::ServeError;
use flexcs_core::{DecodeWarmState, Decoder, Reconstruction};

/// A frame submitted for decoding: measurements taken at a subset of
/// pixel indices of a `rows x cols` frame (the paper's identity-subset
/// scan).
#[derive(Debug, Clone)]
pub struct FrameRequest {
    /// Frame height.
    pub rows: usize,
    /// Frame width.
    pub cols: usize,
    /// Sampled pixel indices, ascending (the sampling plan Φ_M).
    pub selected: Vec<usize>,
    /// Measurements at `selected`, same length.
    pub y: Vec<f64>,
}

impl FrameRequest {
    /// Cheap structural validation done at submit time, before the
    /// request ever reaches a worker.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ServeError::BadRequest(format!(
                "frame shape {}x{} has a zero dimension",
                self.rows, self.cols
            )));
        }
        if self.selected.len() != self.y.len() {
            return Err(ServeError::BadRequest(format!(
                "{} selected indices but {} measurements",
                self.selected.len(),
                self.y.len()
            )));
        }
        if self.selected.is_empty() {
            return Err(ServeError::BadRequest("no measurements".to_string()));
        }
        Ok(())
    }

    /// Shape key used by the scheduler's same-shape batching.
    pub(crate) fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Configuration for one tenant session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Human-readable tenant name (telemetry labels).
    pub name: String,
    /// Decoder configuration the tenant's frames run through.
    pub decoder: Decoder,
    /// Seed each solve from the tenant's previous solution (cross-frame
    /// warm starts). On by default; the first frame after a shape
    /// change runs cold automatically.
    pub warm_decode: bool,
}

impl SessionConfig {
    /// Default session (FISTA decoder, warm decode on) with a name.
    pub fn named(name: impl Into<String>) -> Self {
        SessionConfig {
            name: name.into(),
            decoder: Decoder::default(),
            warm_decode: true,
        }
    }

    /// Replaces the decoder (builder style).
    #[must_use]
    pub fn with_decoder(mut self, decoder: Decoder) -> Self {
        self.decoder = decoder;
        self
    }

    /// Disables cross-frame warm starts (builder style).
    #[must_use]
    pub fn cold(mut self) -> Self {
        self.warm_decode = false;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::named("tenant")
    }
}

/// Live per-tenant state, exclusively held by one worker at a time.
#[derive(Debug)]
pub struct Session {
    name: String,
    decoder: Decoder,
    warm: DecodeWarmState,
    warm_decode: bool,
    frames_decoded: u64,
}

impl Session {
    pub(crate) fn new(config: SessionConfig) -> Self {
        Session {
            name: config.name,
            decoder: config.decoder,
            warm: DecodeWarmState::new(),
            warm_decode: config.warm_decode,
            frames_decoded: 0,
        }
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's decoder (plan cache included).
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// Whether this session seeds solves from the previous solution.
    pub fn warm_decode(&self) -> bool {
        self.warm_decode
    }

    /// Split borrow for warm decodes: the decoder plus the mutable
    /// warm-start state.
    pub fn warm_parts(&mut self) -> (&Decoder, &mut DecodeWarmState) {
        (&self.decoder, &mut self.warm)
    }

    /// Frames this session has decoded (successfully or not).
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Solves seeded from a previous solution so far.
    pub fn warm_starts(&self) -> u64 {
        self.warm.warm_starts()
    }

    pub(crate) fn note_frame(&mut self) {
        self.frames_decoded += 1;
    }

    /// Called after a decode panic: the workspace and carried solution
    /// may be mid-update, so the next solve must run cold on fresh
    /// buffers rather than inherit torn state.
    pub(crate) fn reset_after_panic(&mut self) {
        self.warm = DecodeWarmState::new();
    }
}

/// Pluggable decode implementation.
///
/// The engine routes every frame through the session's backend; the
/// default [`WarmDecodeBackend`] calls the real decoder. Tests inject
/// failing or panicking backends to exercise the scheduler's fault
/// paths, and benches inject instrumented ones.
pub trait DecodeBackend: Send + Sync {
    /// Decodes one frame using (and updating) the tenant's session
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates decoder failures; the engine maps them onto
    /// [`ServeError::Decode`] for the frame's handle.
    fn decode(
        &self,
        req: &FrameRequest,
        session: &mut Session,
    ) -> flexcs_core::Result<Reconstruction>;
}

/// Default backend: the flexcs-core decoder, warm-started across the
/// tenant's frames when the session asks for it.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmDecodeBackend;

impl DecodeBackend for WarmDecodeBackend {
    fn decode(
        &self,
        req: &FrameRequest,
        session: &mut Session,
    ) -> flexcs_core::Result<Reconstruction> {
        if session.warm_decode() {
            let (decoder, warm) = session.warm_parts();
            decoder.reconstruct_warm(req.rows, req.cols, &req.selected, &req.y, warm)
        } else {
            session
                .decoder()
                .reconstruct(req.rows, req.cols, &req.selected, &req.y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_malformed_requests() {
        let bad_shape = FrameRequest {
            rows: 0,
            cols: 4,
            selected: vec![0],
            y: vec![1.0],
        };
        assert!(matches!(
            bad_shape.validate(),
            Err(ServeError::BadRequest(_))
        ));
        let mismatched = FrameRequest {
            rows: 4,
            cols: 4,
            selected: vec![0, 1],
            y: vec![1.0],
        };
        assert!(matches!(
            mismatched.validate(),
            Err(ServeError::BadRequest(_))
        ));
        let empty = FrameRequest {
            rows: 4,
            cols: 4,
            selected: vec![],
            y: vec![],
        };
        assert!(matches!(empty.validate(), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn session_resets_warm_state_after_panic() {
        let mut s = Session::new(SessionConfig::named("t"));
        s.note_frame();
        assert_eq!(s.frames_decoded(), 1);
        s.reset_after_panic();
        assert_eq!(s.warm_starts(), 0);
    }
}
