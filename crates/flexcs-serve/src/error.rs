//! Error type for the serving engine.

use flexcs_core::CoreError;
use std::error::Error;
use std::fmt;

/// Error produced by the multi-tenant decode engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tenant id was never registered with this engine.
    UnknownTenant(usize),
    /// The engine has been shut down and accepts no further frames.
    EngineStopped,
    /// The request was malformed before it reached the decoder
    /// (mismatched measurement/index lengths and the like).
    BadRequest(String),
    /// The decoder returned an error for this frame.
    Decode(CoreError),
    /// The decode of this frame panicked; the worker survived, the
    /// tenant's warm-start state was reset, and only this frame failed.
    DecodePanic(String),
    /// The worker processing this frame disappeared before completing
    /// it (the completion guard fired on drop).
    WorkerLost,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant id {id}"),
            ServeError::EngineStopped => f.write_str("engine has been shut down"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Decode(e) => write!(f, "decode failure: {e}"),
            ServeError::DecodePanic(msg) => write!(f, "decode panicked: {msg}"),
            ServeError::WorkerLost => f.write_str("worker lost before completing the frame"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Decode(e)
    }
}
