//! Engine-native metrics: throughput counters and latency percentile
//! reservoirs.
//!
//! The engine keeps its own latency accounting (independent of the
//! optional `telemetry` feature) so the sustained-throughput bench can
//! read p50/p99 without a recorder installed. Samples land in a fixed
//! capacity reservoir that degrades to a ring buffer once full — a
//! bounded-memory approximation that stays exact until overflow and
//! then tracks the most recent window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded latency sample store (nanoseconds).
#[derive(Debug)]
pub(crate) struct LatencyReservoir {
    samples: Mutex<Vec<u64>>,
    total: AtomicU64,
    cap: usize,
}

impl LatencyReservoir {
    pub(crate) fn new(cap: usize) -> Self {
        LatencyReservoir {
            samples: Mutex::new(Vec::new()),
            total: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    pub(crate) fn record(&self, nanos: u64) {
        let n = self.total.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.len() < self.cap {
            samples.push(nanos);
        } else {
            // Ring overwrite: keeps the most recent `cap` samples.
            samples[(n as usize) % self.cap] = nanos;
        }
    }

    #[cfg(test)]
    pub(crate) fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Percentile over the held samples, in milliseconds; `None` when
    /// no sample has been recorded.
    pub(crate) fn percentile_ms(&self, q: f64) -> Option<f64> {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        percentile_ns(&samples, q).map(|ns| ns / 1e6)
    }
}

/// Nearest-rank percentile of `samples` (unsorted, nanoseconds).
pub(crate) fn percentile_ns(samples: &[u64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<u64> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[rank] as f64)
}

/// Point-in-time metrics for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Tenant id.
    pub tenant: usize,
    /// Tenant name.
    pub name: String,
    /// Frames accepted into the tenant's queue.
    pub submitted: u64,
    /// Frames rejected by backpressure.
    pub rejected: u64,
    /// Frames decoded (including failed decodes).
    pub completed: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Median submit-to-completion latency, ms.
    pub p50_ms: Option<f64>,
    /// 99th-percentile submit-to-completion latency, ms.
    pub p99_ms: Option<f64>,
}

/// Point-in-time metrics for the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Frames accepted across all tenants.
    pub submitted: u64,
    /// Frames rejected by backpressure across all tenants.
    pub rejected: u64,
    /// Frames completed successfully.
    pub decoded: u64,
    /// Frames completed with a decode error.
    pub failed: u64,
    /// Frames whose decode panicked (counted in `failed` as well).
    pub panicked: u64,
    /// Batches dispatched by the scheduler.
    pub batches: u64,
    /// Batches a worker claimed from another worker's deque.
    pub steals: u64,
    /// Mean frames per batch (`None` before the first batch).
    pub mean_batch_occupancy: Option<f64>,
    /// Median submit-to-completion latency across tenants, ms.
    pub p50_ms: Option<f64>,
    /// 99th-percentile submit-to-completion latency across tenants, ms.
    pub p99_ms: Option<f64>,
    /// Per-tenant breakdown, indexed by tenant id.
    pub tenants: Vec<TenantMetrics>,
}

impl EngineMetrics {
    /// Frames completed in total (success + failure).
    pub fn completed(&self) -> u64 {
        self.decoded + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&samples, 0.0), Some(1.0));
        assert_eq!(percentile_ns(&samples, 1.0), Some(100.0));
        assert_eq!(percentile_ns(&samples, 0.5), Some(51.0));
        assert_eq!(percentile_ns(&[], 0.5), None);
    }

    #[test]
    fn reservoir_rings_after_capacity() {
        let r = LatencyReservoir::new(4);
        for ns in 0..10u64 {
            r.record(ns);
        }
        assert_eq!(r.total(), 10);
        // Ring holds the last window (6..10 overwrote 0..4 mod 4, the
        // exact layout is an implementation detail; the percentile must
        // come from recent samples only).
        let p100 = r.percentile_ms(1.0).unwrap();
        assert!(p100 <= 10.0 / 1e6);
        assert!(p100 >= 6.0 / 1e6);
    }

    #[test]
    fn empty_reservoir_has_no_percentiles() {
        let r = LatencyReservoir::new(8);
        assert_eq!(r.percentile_ms(0.5), None);
        assert_eq!(r.total(), 0);
    }
}
