//! Large-frame session mode: megapixel frames served through the
//! block-tiled pipeline.
//!
//! A [`LargeFrameSession`] owns a set of **shard tenants** inside an
//! [`Engine`]. Submitting one tiled frame fans its blocks out across
//! the shards as ordinary [`FrameRequest`]s — every block rides the
//! engine's work-stealing scheduler, same-shape batching (all blocks
//! share one `B x B` shape, so batching is maximal) and backpressure
//! exactly like single-field tenants — and the returned
//! [`LargeFrameHandle`] reassembles the overlap-and-average frame when
//! the caller waits.
//!
//! Shards run **cold** (no cross-frame warm start): a block's result
//! must not depend on which shard decoded it or what that shard decoded
//! before, so a served large frame is bit-identical to
//! [`flexcs_core::BlockPipeline`] output for any shard count.

use crate::engine::{Engine, Submit};
use crate::error::ServeError;
use crate::handle::FrameHandle;
use crate::session::{FrameRequest, SessionConfig};
use flexcs_core::{BlockGrid, BlockMeasurements, Decoder};
use flexcs_linalg::Matrix;
use flexcs_solver::SolveReport;
use std::time::Duration;

/// Configuration for a large-frame session.
#[derive(Debug, Clone, Default)]
pub struct LargeFrameConfig {
    /// Shard tenants to spread blocks over; `0` matches the engine's
    /// worker count. Results are bit-identical for every setting.
    pub shards: usize,
    /// Decoder configuration every shard uses.
    pub decoder: Decoder,
}

/// A tenant whose frames are megapixel tilings rather than single
/// fields: blocks fan out across shard tenants and reassemble on wait.
///
/// # Examples
///
/// ```
/// use flexcs_core::{BlockGrid, BlockGridConfig};
/// use flexcs_linalg::Matrix;
/// use flexcs_serve::{Engine, EngineConfig, LargeFrameConfig, LargeFrameSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = Engine::new(EngineConfig::default());
/// let session = LargeFrameSession::register(&engine, "array-7", LargeFrameConfig::default());
///
/// let frame = Matrix::from_fn(64, 64, |i, j| {
///     (i as f64 * 0.05).cos() + (j as f64 * 0.04).sin()
/// });
/// let grid = BlockGrid::new(64, 64, BlockGridConfig { block: 16, overlap: 4 })?;
/// let meas = grid.measure(&frame, 0.6, &[], 7)?;
///
/// let handle = session.submit(&engine, &grid, &meas)?;
/// let decoded = handle.wait()?;
/// assert!(flexcs_core::rmse(&decoded.frame, &frame) < 0.05);
/// engine.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LargeFrameSession {
    name: String,
    shard_tenants: Vec<usize>,
}

impl LargeFrameSession {
    /// Registers `config.shards` cold shard tenants named
    /// `"<name>/shard<k>"` in the engine.
    pub fn register(engine: &Engine, name: impl Into<String>, config: LargeFrameConfig) -> Self {
        let name = name.into();
        let shards = if config.shards == 0 {
            engine.workers()
        } else {
            config.shards
        };
        let shard_tenants = (0..shards)
            .map(|k| {
                engine.register_tenant(
                    SessionConfig::named(format!("{name}/shard{k}"))
                        .with_decoder(config.decoder.clone())
                        .cold(),
                )
            })
            .collect();
        LargeFrameSession {
            name,
            shard_tenants,
        }
    }

    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shard tenant ids, in block-assignment order.
    pub fn shard_tenants(&self) -> &[usize] {
        &self.shard_tenants
    }

    /// Fans one tiled frame's blocks out across the shards (block `i`
    /// goes to shard `i % shards`, so the assignment is reproducible).
    /// Blocks rejected by backpressure are resubmitted after a short
    /// pause — the engine is draining our own earlier blocks, so the
    /// wait is bounded.
    ///
    /// # Errors
    ///
    /// Propagates submit-time failures ([`ServeError::BadRequest`],
    /// [`ServeError::EngineStopped`]) and grid/measurement mismatches.
    pub fn submit(
        &self,
        engine: &Engine,
        grid: &BlockGrid,
        meas: &BlockMeasurements,
    ) -> Result<LargeFrameHandle, ServeError> {
        if meas.blocks.len() != grid.block_count() {
            return Err(ServeError::BadRequest(format!(
                "{} measured blocks for a {}-block grid",
                meas.blocks.len(),
                grid.block_count()
            )));
        }
        let b = grid.block_size();
        let mut handles = Vec::with_capacity(meas.blocks.len());
        for (i, block) in meas.blocks.iter().enumerate() {
            let tenant = self.shard_tenants[i % self.shard_tenants.len()];
            let req = FrameRequest {
                rows: b,
                cols: b,
                selected: block.plan.selected().to_vec(),
                y: block.y.clone(),
            };
            loop {
                match engine.submit(tenant, req.clone())? {
                    Submit::Accepted(handle) => {
                        handles.push(handle);
                        break;
                    }
                    Submit::Rejected { .. } => {
                        // Workers are draining this frame's earlier
                        // blocks; yield briefly and resubmit.
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
        Ok(LargeFrameHandle {
            grid: grid.clone(),
            handles,
        })
    }
}

/// Completion handle for one fanned-out large frame; waits for every
/// block and reassembles the deblocked frame.
#[derive(Debug)]
pub struct LargeFrameHandle {
    grid: BlockGrid,
    handles: Vec<FrameHandle>,
}

impl LargeFrameHandle {
    /// Number of block subtasks in flight.
    pub fn blocks(&self) -> usize {
        self.handles.len()
    }

    /// Blocks until every block completes, then fuses the frame by
    /// overlap-and-average. The first failing block fails the frame.
    ///
    /// # Errors
    ///
    /// Propagates the first per-block decode failure.
    pub fn wait(self) -> Result<LargeDecodedFrame, ServeError> {
        let mut tiles = Vec::with_capacity(self.handles.len());
        let mut reports = Vec::with_capacity(self.handles.len());
        for handle in self.handles {
            let decoded = handle.wait()?;
            tiles.push(decoded.frame);
            reports.push(decoded.report);
        }
        let (frame, seam_pixels) = self.grid.reassemble(&tiles)?;
        Ok(LargeDecodedFrame {
            frame,
            reports,
            seam_pixels,
        })
    }
}

/// A reassembled large frame.
#[derive(Debug, Clone)]
pub struct LargeDecodedFrame {
    /// The deblocked full frame.
    pub frame: Matrix,
    /// Per-block solver diagnostics, block-index order.
    pub reports: Vec<SolveReport>,
    /// Pixels fused from more than one block.
    pub seam_pixels: usize,
}
