//! Completion handles: the caller-side future for a submitted frame
//! and the worker-side guard that fulfils it.
//!
//! The pair is a one-shot slot guarded by a `Mutex` + `Condvar`. The
//! worker half ([`Completion`]) is **drop-safe**: if a worker thread
//! dies while owning a completion — a panic that escaped the per-frame
//! guard, an abort mid-batch — the `Drop` impl resolves the slot with
//! [`ServeError::WorkerLost`] instead of leaving waiters blocked
//! forever. A wedged queue can therefore lose at most the frames it
//! had claimed, never the callers waiting on them.

use crate::error::ServeError;
use flexcs_linalg::Matrix;
use flexcs_solver::SolveReport;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One decoded frame routed back through its [`FrameHandle`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Tenant the frame belongs to.
    pub tenant: usize,
    /// Per-tenant submission sequence number (0-based, FIFO order).
    pub sequence: u64,
    /// Reconstructed frame.
    pub frame: Matrix,
    /// Solver diagnostics for the decode.
    pub report: SolveReport,
    /// Submit-to-completion latency (queue wait + decode).
    pub latency: Duration,
}

/// Outcome of one submitted frame.
pub type FrameResult = Result<DecodedFrame, ServeError>;

#[derive(Debug)]
struct Shared {
    slot: Mutex<Option<FrameResult>>,
    ready: Condvar,
}

/// Caller-side handle for a frame accepted by [`crate::Engine::submit`].
#[derive(Debug)]
pub struct FrameHandle {
    shared: Arc<Shared>,
}

impl FrameHandle {
    /// Blocks until the frame completes and takes its result.
    pub fn wait(self) -> FrameResult {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .shared
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking probe: takes the result if the frame has completed.
    pub fn try_take(&self) -> Option<FrameResult> {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Whether a result is waiting (false after it has been taken).
    pub fn is_done(&self) -> bool {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }
}

/// Worker-side half: fulfils the handle exactly once, or resolves it
/// with [`ServeError::WorkerLost`] when dropped unfulfilled.
#[derive(Debug)]
pub(crate) struct Completion {
    shared: Option<Arc<Shared>>,
}

impl Completion {
    /// Resolves the handle with `result`.
    pub(crate) fn complete(mut self, result: FrameResult) {
        if let Some(shared) = self.shared.take() {
            Completion::fill(&shared, result);
        }
    }

    fn fill(shared: &Shared, result: FrameResult) {
        let mut slot = shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(result);
            shared.ready.notify_all();
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            Completion::fill(&shared, Err(ServeError::WorkerLost));
        }
    }
}

/// Creates a connected handle/completion pair.
pub(crate) fn completion_pair() -> (FrameHandle, Completion) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        FrameHandle {
            shared: Arc::clone(&shared),
        },
        Completion {
            shared: Some(shared),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_then_wait_round_trips() {
        let (handle, completion) = completion_pair();
        assert!(!handle.is_done());
        completion.complete(Err(ServeError::EngineStopped));
        assert!(handle.is_done());
        assert_eq!(handle.wait(), Err(ServeError::EngineStopped));
    }

    #[test]
    fn dropped_completion_resolves_worker_lost() {
        // The drop-safety contract: losing the worker half never
        // strands a waiter.
        let (handle, completion) = completion_pair();
        drop(completion);
        assert_eq!(handle.wait(), Err(ServeError::WorkerLost));
    }

    #[test]
    fn wait_blocks_until_cross_thread_completion() {
        let (handle, completion) = completion_pair();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            completion.complete(Err(ServeError::WorkerLost));
        });
        assert_eq!(handle.wait(), Err(ServeError::WorkerLost));
        t.join().unwrap();
    }

    #[test]
    fn try_take_consumes_once() {
        let (handle, completion) = completion_pair();
        assert!(handle.try_take().is_none());
        completion.complete(Err(ServeError::EngineStopped));
        assert!(handle.try_take().is_some());
        assert!(handle.try_take().is_none());
    }
}
