//! Large-frame session mode: a tiled frame served through shard
//! tenants must be bit-identical to the in-process `BlockPipeline`
//! decode, for every shard count, including under backpressure.

use flexcs_core::{rmse, BlockGrid, BlockGridConfig, BlockPipeline, BlockPipelineConfig, Decoder};
use flexcs_linalg::Matrix;
use flexcs_serve::{Engine, EngineConfig, LargeFrameConfig, LargeFrameSession};

fn smooth_frame(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        0.5 + 0.3 * ((i as f64) * 0.05).sin() + 0.2 * ((j as f64) * 0.04).cos()
    })
}

#[test]
fn served_large_frame_matches_block_pipeline_bitwise() {
    let frame = smooth_frame(64, 64);
    let grid = BlockGrid::new(
        64,
        64,
        BlockGridConfig {
            block: 16,
            overlap: 4,
        },
    )
    .unwrap();
    let meas = grid.measure(&frame, 0.6, &[], 13).unwrap();

    let reference = BlockPipeline::new(Decoder::default(), BlockPipelineConfig::default())
        .decode(&grid, &meas)
        .unwrap();

    let engine = Engine::new(EngineConfig::default());
    let session = LargeFrameSession::register(&engine, "mega", LargeFrameConfig::default());
    let handle = session.submit(&engine, &grid, &meas).unwrap();
    assert_eq!(handle.blocks(), grid.block_count());
    let served = handle.wait().unwrap();
    engine.shutdown();

    assert!(rmse(&served.frame, &frame) < 0.05);
    assert_eq!(served.seam_pixels, reference.seam_pixels);
    assert_eq!(served.reports.len(), grid.block_count());
    for (s, r) in served
        .frame
        .as_slice()
        .iter()
        .zip(reference.frame.as_slice())
    {
        assert_eq!(
            s.to_bits(),
            r.to_bits(),
            "served large frame deviates from the in-process block pipeline"
        );
    }
}

#[test]
fn served_frame_is_bit_identical_across_shard_counts() {
    let frame = smooth_frame(48, 48);
    let grid = BlockGrid::new(
        48,
        48,
        BlockGridConfig {
            block: 16,
            overlap: 0,
        },
    )
    .unwrap();
    let meas = grid.measure(&frame, 0.6, &[], 31).unwrap();

    let mut frames = Vec::new();
    for shards in [1usize, 2, 5] {
        let engine = Engine::new(EngineConfig::default());
        let session = LargeFrameSession::register(
            &engine,
            format!("mega-{shards}"),
            LargeFrameConfig {
                shards,
                ..LargeFrameConfig::default()
            },
        );
        assert_eq!(session.shard_tenants().len(), shards);
        let served = session
            .submit(&engine, &grid, &meas)
            .unwrap()
            .wait()
            .unwrap();
        engine.shutdown();
        frames.push(served.frame);
    }
    for other in &frames[1..] {
        for (a, b) in frames[0].as_slice().iter().zip(other.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "shard count changed the result");
        }
    }
}

#[test]
fn backpressure_on_tiny_queues_still_completes() {
    // Queue capacity far below the block count forces the submit loop
    // through its Rejected/resubmit path.
    let frame = smooth_frame(64, 64);
    let grid = BlockGrid::new(
        64,
        64,
        BlockGridConfig {
            block: 16,
            overlap: 4,
        },
    )
    .unwrap();
    let meas = grid.measure(&frame, 0.5, &[], 3).unwrap();
    assert!(grid.block_count() > 8);

    let engine = Engine::new(EngineConfig {
        queue_capacity: 2,
        ..EngineConfig::default()
    });
    let session = LargeFrameSession::register(
        &engine,
        "tight",
        LargeFrameConfig {
            shards: 1,
            ..LargeFrameConfig::default()
        },
    );
    let served = session
        .submit(&engine, &grid, &meas)
        .unwrap()
        .wait()
        .unwrap();
    engine.shutdown();
    assert!(rmse(&served.frame, &frame) < 0.05);
}

#[test]
fn submit_rejects_mismatched_measurements() {
    let grid = BlockGrid::new(
        32,
        32,
        BlockGridConfig {
            block: 16,
            overlap: 0,
        },
    )
    .unwrap();
    let frame = smooth_frame(32, 32);
    let mut meas = grid.measure(&frame, 0.6, &[], 1).unwrap();
    meas.blocks.pop();

    let engine = Engine::new(EngineConfig::default());
    let session = LargeFrameSession::register(&engine, "bad", LargeFrameConfig::default());
    assert!(session.submit(&engine, &grid, &meas).is_err());
    engine.shutdown();
}
