//! Cross-tenant isolation: concurrent sessions must not bleed
//! workspace, plan, or warm-start state into each other.
//!
//! Two tenants with different frame shapes, contents and sampling
//! seeds run interleaved through a multi-worker engine; every decoded
//! frame must be **bit-identical** to decoding the same per-tenant
//! stream serially with a dedicated decoder and warm state. Any shared
//! mutable state between sessions (a bled workspace buffer, a reused
//! previous-solution seed, a swapped DCT plan) breaks exact equality.

use flexcs_core::{DecodeWarmState, Decoder, SamplingPlan};
use flexcs_linalg::Matrix;
use flexcs_serve::{Engine, EngineConfig, FrameRequest, SessionConfig};
use flexcs_transform::Dct2d;

/// A drifting DCT-sparse stream: frame `t` perturbs the coefficients
/// slightly, so consecutive decodes are correlated (the warm-start
/// regime) but not identical.
fn stream(rows: usize, cols: usize, frames: usize, seed: u64) -> Vec<Matrix> {
    let dct = Dct2d::new(rows, cols).unwrap();
    (0..frames)
        .map(|t| {
            let mut coeffs = Matrix::zeros(rows, cols);
            let drift = t as f64 * 0.05;
            coeffs[(0, 0)] = 4.0 + drift * ((seed % 7) as f64);
            coeffs[(1, 0)] = 1.5 - drift;
            coeffs[(0, 2)] = -1.0 + 0.3 * ((seed as f64 + t as f64) * 0.7).sin();
            coeffs[(2, 1)] = 0.8;
            dct.inverse(&coeffs).unwrap()
        })
        .collect()
}

fn requests(frames: &[Matrix], density: f64, seed: u64) -> Vec<FrameRequest> {
    frames
        .iter()
        .enumerate()
        .map(|(t, frame)| {
            let n = frame.rows() * frame.cols();
            let m = ((n as f64) * density) as usize;
            let plan = SamplingPlan::random_subset(n, m, &[], seed + t as u64).unwrap();
            FrameRequest {
                rows: frame.rows(),
                cols: frame.cols(),
                selected: plan.selected().to_vec(),
                y: plan.measure(&frame.to_flat()),
            }
        })
        .collect()
}

/// Serial reference: the same warm-decode sequence a session performs,
/// on a fresh decoder and warm state.
fn serial_decodes(reqs: &[FrameRequest]) -> Vec<Matrix> {
    let decoder = Decoder::default();
    let mut warm = DecodeWarmState::new();
    reqs.iter()
        .map(|r| {
            decoder
                .reconstruct_warm(r.rows, r.cols, &r.selected, &r.y, &mut warm)
                .unwrap()
                .frame
        })
        .collect()
}

#[test]
fn interleaved_tenants_match_serial_decodes_bit_for_bit() {
    // Different shapes (one non-square) and different seeds per tenant.
    let stream_a = stream(12, 12, 5, 3);
    let stream_b = stream(9, 7, 5, 41);
    let reqs_a = requests(&stream_a, 0.6, 100);
    let reqs_b = requests(&stream_b, 0.7, 900);
    let serial_a = serial_decodes(&reqs_a);
    let serial_b = serial_decodes(&reqs_b);

    let engine = Engine::new(EngineConfig {
        workers: 3,
        ..EngineConfig::default()
    });
    let tenant_a = engine.register_tenant(SessionConfig::named("array-a"));
    let tenant_b = engine.register_tenant(SessionConfig::named("array-b"));

    // Interleave submissions so the schedules genuinely overlap.
    let mut handles_a = Vec::new();
    let mut handles_b = Vec::new();
    for (ra, rb) in reqs_a.iter().zip(&reqs_b) {
        handles_a.push(
            engine
                .submit(tenant_a, ra.clone())
                .unwrap()
                .accepted()
                .unwrap(),
        );
        handles_b.push(
            engine
                .submit(tenant_b, rb.clone())
                .unwrap()
                .accepted()
                .unwrap(),
        );
    }

    for (t, (handle, expected)) in handles_a.into_iter().zip(&serial_a).enumerate() {
        let decoded = handle.wait().unwrap();
        assert_eq!(decoded.sequence, t as u64, "tenant A decodes in FIFO order");
        assert_eq!(
            &decoded.frame, expected,
            "tenant A frame {t} differs from the serial decode"
        );
    }
    for (t, (handle, expected)) in handles_b.into_iter().zip(&serial_b).enumerate() {
        let decoded = handle.wait().unwrap();
        assert_eq!(decoded.sequence, t as u64, "tenant B decodes in FIFO order");
        assert_eq!(
            &decoded.frame, expected,
            "tenant B frame {t} differs from the serial decode"
        );
    }

    let metrics = engine.metrics();
    assert_eq!(metrics.decoded, 10);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.tenants.len(), 2);
    assert!(metrics.tenants.iter().all(|t| t.completed == 5));
}

#[test]
fn shape_switch_within_a_tenant_stays_serial_exact() {
    // One tenant alternating shapes: the warm state resets on each
    // switch exactly as it does serially, so equality must still hold.
    let small = stream(8, 8, 3, 5);
    let wide = stream(6, 10, 3, 6);
    let mut reqs = Vec::new();
    for (s, w) in requests(&small, 0.6, 10)
        .into_iter()
        .zip(requests(&wide, 0.6, 20))
    {
        reqs.push(s);
        reqs.push(w);
    }
    let serial = serial_decodes(&reqs);

    let engine = Engine::new(EngineConfig {
        workers: 2,
        max_batch: 4,
        ..EngineConfig::default()
    });
    let tenant = engine.register_tenant(SessionConfig::named("mixed"));
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| {
            engine
                .submit(tenant, r.clone())
                .unwrap()
                .accepted()
                .unwrap()
        })
        .collect();
    for (handle, expected) in handles.into_iter().zip(&serial) {
        assert_eq!(&handle.wait().unwrap().frame, expected);
    }
}
