//! Scheduler panic guard: a panicking decode marks only that frame
//! failed — the worker survives, the tenant queue keeps draining, and
//! other tenants never notice.

use flexcs_core::{Reconstruction, SamplingPlan};
use flexcs_linalg::Matrix;
use flexcs_serve::{
    DecodeBackend, Engine, EngineConfig, FrameRequest, ServeError, Session, SessionConfig,
    WarmDecodeBackend,
};
use flexcs_transform::Dct2d;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Runs `f` with the default panic hook silenced (the injected solver
/// panics would otherwise spam the test log). The global hook is
/// process-wide state, so the two tests here serialize on a lock.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(default_hook);
    out
}

/// Solver stand-in that panics on poisoned frames (marked by a NaN
/// sentinel in the first measurement) and otherwise delegates to the
/// real warm decoder.
struct PanickingSolver {
    decodes: AtomicU64,
}

impl DecodeBackend for PanickingSolver {
    fn decode(
        &self,
        req: &FrameRequest,
        session: &mut Session,
    ) -> flexcs_core::Result<Reconstruction> {
        self.decodes.fetch_add(1, Ordering::Relaxed);
        assert!(
            !req.y[0].is_nan(),
            "injected solver panic: measurement buffer corrupted"
        );
        WarmDecodeBackend.decode(req, session)
    }
}

fn sparse_frame(rows: usize, cols: usize) -> Matrix {
    let dct = Dct2d::new(rows, cols).unwrap();
    let mut coeffs = Matrix::zeros(rows, cols);
    coeffs[(0, 0)] = 4.0;
    coeffs[(1, 1)] = 1.2;
    dct.inverse(&coeffs).unwrap()
}

fn request(frame: &Matrix, m: usize, seed: u64) -> FrameRequest {
    let (rows, cols) = (frame.rows(), frame.cols());
    let plan = SamplingPlan::random_subset(rows * cols, m, &[], seed).unwrap();
    FrameRequest {
        rows,
        cols,
        selected: plan.selected().to_vec(),
        y: plan.measure(&frame.to_flat()),
    }
}

#[test]
fn panicking_decode_fails_only_its_frame() {
    let backend = Arc::new(PanickingSolver {
        decodes: AtomicU64::new(0),
    });
    let engine = Engine::with_backend(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        Arc::clone(&backend) as Arc<dyn DecodeBackend>,
    );
    let victim = engine.register_tenant(SessionConfig::named("victim"));
    let bystander = engine.register_tenant(SessionConfig::named("bystander"));
    let frame = sparse_frame(8, 8);

    // Frames 0,1 fine; frame 2 poisoned; frames 3,4 fine again — all
    // queued before the panic fires, so a wedged queue would strand
    // the tail.
    let (results, bystander_result, after_result) = quiet_panics(|| {
        let mut handles = Vec::new();
        for seed in 0..5u64 {
            let mut req = request(&frame, 40, seed);
            if seed == 2 {
                req.y[0] = f64::NAN;
            }
            handles.push(
                engine
                    .submit(victim, req)
                    .unwrap()
                    .accepted()
                    .expect("queue has room"),
            );
        }
        let bystander_handle = engine
            .submit(bystander, request(&frame, 40, 77))
            .unwrap()
            .accepted()
            .unwrap();
        let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
        let bystander_result = bystander_handle.wait();
        // The engine is still live after the panic: a fresh frame
        // decodes.
        let after_result = engine
            .submit(victim, request(&frame, 40, 9))
            .unwrap()
            .accepted()
            .unwrap()
            .wait();
        (results, bystander_result, after_result)
    });

    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            match result {
                Err(ServeError::DecodePanic(msg)) => {
                    assert!(msg.contains("injected solver panic"), "payload: {msg}");
                }
                other => panic!("poisoned frame should fail with DecodePanic, got {other:?}"),
            }
        } else {
            let decoded = result.as_ref().expect("healthy frames decode");
            assert!(decoded.report.converged || decoded.report.iterations > 0);
        }
    }
    assert!(
        bystander_result.is_ok(),
        "other tenants are untouched by the panic"
    );
    assert!(after_result.is_ok(), "queue is not wedged after a panic");
    assert_eq!(backend.decodes.load(Ordering::Relaxed), 7);

    let metrics = engine.metrics();
    assert_eq!(metrics.panicked, 1);
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.decoded, 6);
}

#[test]
fn warm_state_resets_after_panic_keeps_decodes_finite() {
    let engine = Engine::with_backend(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        Arc::new(PanickingSolver {
            decodes: AtomicU64::new(0),
        }),
    );
    let tenant = engine.register_tenant(SessionConfig::named("reset"));
    let frame = sparse_frame(8, 8);

    // Warm up, panic, then decode again: the post-panic decode runs on
    // reset warm state and must produce a sane reconstruction.
    let (warm_result, crash_result, recovered_result) = quiet_panics(|| {
        let warm = engine
            .submit(tenant, request(&frame, 40, 1))
            .unwrap()
            .accepted()
            .unwrap()
            .wait();
        let mut poisoned = request(&frame, 40, 2);
        poisoned.y[0] = f64::NAN;
        let crash = engine
            .submit(tenant, poisoned)
            .unwrap()
            .accepted()
            .unwrap()
            .wait();
        let recovered = engine
            .submit(tenant, request(&frame, 40, 3))
            .unwrap()
            .accepted()
            .unwrap()
            .wait();
        (warm, crash, recovered)
    });
    assert!(warm_result.is_ok());
    assert!(matches!(crash_result, Err(ServeError::DecodePanic(_))));
    let decoded = recovered_result.expect("decode after panic succeeds");
    assert!(
        decoded.frame.max_abs_diff(&frame).unwrap() < 0.05,
        "post-panic reconstruction is sane (reset warm state)"
    );
}
