//! Per-channel instance normalization with learnable affine parameters.
//!
//! A BatchNorm stand-in that works in the trainer's sample-at-a-time
//! regime: each channel of each sample is normalized by its own spatial
//! statistics (`InstanceNorm`), then scaled/shifted by learnable
//! `γ`/`β`. The backward pass propagates through the statistics exactly.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Instance normalization over `[C, H, W]` tensors.
pub struct InstanceNorm2d {
    channels: usize,
    eps: f64,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    grad_gamma: Vec<f64>,
    grad_beta: Vec<f64>,
    /// Cache: normalized activations and per-channel 1/σ.
    cache_xhat: Option<Tensor>,
    cache_inv_std: Vec<f64>,
}

impl InstanceNorm2d {
    /// Creates a normalization layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        InstanceNorm2d {
            channels,
            eps: 1e-5,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            cache_xhat: None,
            cache_inv_std: vec![0.0; channels],
        }
    }
}

impl Layer for InstanceNorm2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(c, self.channels, "instance norm channel mismatch");
        let hw = (h * w) as f64;
        let mut xhat = Tensor::zeros(&[c, h, w]);
        let mut y = Tensor::zeros(&[c, h, w]);
        for ci in 0..c {
            let mut mean = 0.0;
            for i in 0..h {
                for j in 0..w {
                    mean += x.at3(ci, i, j);
                }
            }
            mean /= hw;
            let mut var = 0.0;
            for i in 0..h {
                for j in 0..w {
                    let d = x.at3(ci, i, j) - mean;
                    var += d * d;
                }
            }
            var /= hw;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.cache_inv_std[ci] = inv_std;
            for i in 0..h {
                for j in 0..w {
                    let xh = (x.at3(ci, i, j) - mean) * inv_std;
                    *xhat.at3_mut(ci, i, j) = xh;
                    *y.at3_mut(ci, i, j) = self.gamma[ci] * xh + self.beta[ci];
                }
            }
        }
        self.cache_xhat = Some(xhat);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let xhat = self.cache_xhat.as_ref().expect("forward before backward");
        let (c, h, w) = (xhat.shape()[0], xhat.shape()[1], xhat.shape()[2]);
        let hw = (h * w) as f64;
        let mut gx = Tensor::zeros(&[c, h, w]);
        for ci in 0..c {
            let mut sum_g = 0.0;
            let mut sum_gx = 0.0;
            for i in 0..h {
                for j in 0..w {
                    let g = grad.at3(ci, i, j);
                    sum_g += g;
                    sum_gx += g * xhat.at3(ci, i, j);
                }
            }
            self.grad_beta[ci] += sum_g;
            self.grad_gamma[ci] += sum_gx;
            let mean_g = sum_g / hw;
            let mean_gx = sum_gx / hw;
            let scale = self.gamma[ci] * self.cache_inv_std[ci];
            for i in 0..h {
                for j in 0..w {
                    let g = grad.at3(ci, i, j);
                    let xh = xhat.at3(ci, i, j);
                    *gx.at3_mut(ci, i, j) = scale * (g - mean_g - xh * mean_gx);
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.iter_mut().for_each(|g| *g = 0.0);
        self.grad_beta.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "instancenorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_normalized_per_channel() {
        let mut norm = InstanceNorm2d::new(2);
        let x = Tensor::from_fn(&[2, 4, 4], |i| (i as f64) * 0.5 - 3.0);
        let y = norm.forward(&x, true);
        for c in 0..2 {
            let vals: Vec<f64> = (0..16).map(|k| y.at3(c, k / 4, k % 4)).collect();
            let mean: f64 = vals.iter().sum::<f64>() / 16.0;
            let var: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 16.0;
            assert!(mean.abs() < 1e-10, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn affine_parameters_apply() {
        let mut norm = InstanceNorm2d::new(1);
        norm.visit_params(&mut |p, _| {
            if p.len() == 1 {
                p[0] = if p[0] == 1.0 { 2.0 } else { 5.0 };
            }
        });
        let x = Tensor::from_fn(&[1, 2, 2], |i| i as f64);
        let y = norm.forward(&x, true);
        let mean: f64 = y.as_slice().iter().sum::<f64>() / 4.0;
        // β shifts the (zero-mean) normalized output.
        assert!((mean - 5.0).abs() < 1e-10, "mean {mean}");
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut norm = InstanceNorm2d::new(2);
        let x = Tensor::from_fn(&[2, 3, 3], |i| ((i * 11 % 7) as f64) * 0.4 - 1.0);
        // Weighted sum loss so the gradient isn't trivially zero (a
        // plain sum has zero gradient through normalization).
        let wts: Vec<f64> = (0..18).map(|i| ((i as f64) * 0.7).sin()).collect();
        let y = norm.forward(&x, true);
        let loss = |y: &Tensor| -> f64 { y.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };
        let _ = loss(&y);
        let grad = Tensor::from_vec(&[2, 3, 3], wts.clone());
        let gx = norm.backward(&grad);
        let h = 1e-6;
        for idx in [0usize, 4, 9, 13, 17] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= h;
            let fp = loss(&norm.forward(&xp, true));
            let fm = loss(&norm.forward(&xm, true));
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - gx.as_slice()[idx]).abs() < 1e-5,
                "grad[{idx}]: {} vs {num}",
                gx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn parameter_gradients_accumulate() {
        let mut norm = InstanceNorm2d::new(1);
        let x = Tensor::from_fn(&[1, 2, 2], |i| i as f64);
        let g = Tensor::from_vec(&[1, 2, 2], vec![1.0; 4]);
        norm.forward(&x, true);
        norm.backward(&g);
        let mut grads = Vec::new();
        norm.visit_params(&mut |_, gr| grads.push(gr.to_vec()));
        // dβ = Σg = 4; dγ = Σ g·x̂ = 0 for symmetric x̂.
        assert!((grads[1][0] - 4.0).abs() < 1e-12);
        assert!(grads[0][0].abs() < 1e-10);
        norm.zero_grads();
        let mut zeroed = Vec::new();
        norm.visit_params(&mut |_, gr| zeroed.push(gr.to_vec()));
        assert_eq!(zeroed[0][0], 0.0);
        assert_eq!(zeroed[1][0], 0.0);
    }
}
