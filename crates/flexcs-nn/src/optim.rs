//! Optimizers and learning-rate scheduling.
//!
//! The paper trains "with error backpropagation using Adam optimizer"
//! and reduces "the learning rate by a factor of 10 until validation
//! loss converges" — implemented here as [`Adam`] plus
//! [`ReduceLrOnPlateau`].

use crate::layers::Layer;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to all parameters of `net`.
    pub fn step(&mut self, net: &mut dyn Layer) {
        let mut buf_idx = 0;
        let velocity = &mut self.velocity;
        let (lr, momentum) = (self.lr, self.momentum);
        net.visit_params(&mut |w, g| {
            if velocity.len() <= buf_idx {
                velocity.push(vec![0.0; w.len()]);
            }
            let v = &mut velocity[buf_idx];
            for i in 0..w.len() {
                v[i] = momentum * v[i] - lr * g[i];
                w[i] += v[i];
            }
            buf_idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Epsilon for numerical stability.
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the customary `β₁ = 0.9`, `β₂ = 0.999`.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step to all parameters of `net`.
    pub fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let mut buf_idx = 0;
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        net.visit_params(&mut |w, g| {
            if m_all.len() <= buf_idx {
                m_all.push(vec![0.0; w.len()]);
                v_all.push(vec![0.0; w.len()]);
            }
            let m = &mut m_all[buf_idx];
            let v = &mut v_all[buf_idx];
            for i in 0..w.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            buf_idx += 1;
        });
    }
}

/// Learning-rate scheduler: divides the rate by `factor` after
/// `patience` consecutive epochs without validation-loss improvement.
#[derive(Debug, Clone)]
pub struct ReduceLrOnPlateau {
    /// Division factor applied on plateau (paper: 10).
    pub factor: f64,
    /// Epochs without improvement tolerated before reducing.
    pub patience: usize,
    /// Lower bound on the learning rate.
    pub min_lr: f64,
    best: f64,
    stale: usize,
}

impl ReduceLrOnPlateau {
    /// Creates a scheduler with the paper's factor of 10.
    pub fn new(patience: usize) -> Self {
        ReduceLrOnPlateau {
            factor: 10.0,
            patience,
            min_lr: 1e-6,
            best: f64::INFINITY,
            stale: 0,
        }
    }

    /// Observes one epoch's validation loss; updates `lr` in place and
    /// returns `true` when a reduction happened.
    pub fn observe(&mut self, val_loss: f64, lr: &mut f64) -> bool {
        if val_loss < self.best - 1e-12 {
            self.best = val_loss;
            self.stale = 0;
            return false;
        }
        self.stale += 1;
        if self.stale > self.patience && *lr > self.min_lr {
            *lr = (*lr / self.factor).max(self.min_lr);
            self.stale = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::loss::cross_entropy_with_logits;
    use crate::tensor::Tensor;

    fn train_toy(mut step: impl FnMut(&mut Dense)) -> f64 {
        // Learn to map a fixed input to class 1.
        let mut layer = Dense::new(4, 3, 1);
        let x = Tensor::from_vec(&[4], vec![0.5, -0.2, 0.8, 0.1]);
        let mut final_loss = f64::INFINITY;
        for _ in 0..200 {
            layer.zero_grads();
            let logits = layer.forward(&x, true);
            let (loss, grad) = cross_entropy_with_logits(&logits, 1);
            layer.backward(&grad);
            step(&mut layer);
            final_loss = loss;
        }
        final_loss
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.1);
        let loss = train_toy(|l| opt.step(l));
        assert!(loss < 0.05, "final loss {loss}");
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let loss = train_toy(|l| opt.step(l));
        assert!(loss < 0.05, "final loss {loss}");
    }

    #[test]
    fn adam_reduces_loss_fast() {
        let mut opt = Adam::new(0.05);
        let loss = train_toy(|l| opt.step(l));
        assert!(loss < 1e-2, "final loss {loss}");
    }

    #[test]
    fn plateau_scheduler_reduces_lr() {
        let mut sched = ReduceLrOnPlateau::new(2);
        let mut lr = 1.0;
        // Improvement: no reduction.
        assert!(!sched.observe(1.0, &mut lr));
        assert!(!sched.observe(0.5, &mut lr));
        // Stale epochs.
        assert!(!sched.observe(0.6, &mut lr));
        assert!(!sched.observe(0.6, &mut lr));
        assert!(sched.observe(0.6, &mut lr));
        assert!((lr - 0.1).abs() < 1e-12);
        // Respects the floor.
        let mut tiny = 1e-6;
        let mut s2 = ReduceLrOnPlateau::new(0);
        assert!(!s2.observe(1.0, &mut tiny));
        assert!(!s2.observe(2.0, &mut tiny));
        assert_eq!(tiny, 1e-6);
    }
}
