//! # flexcs-nn
//!
//! From-scratch CNN/ResNet substrate for the flexcs tactile-recognition
//! case study (DAC 2020 *Robust Design of Large Area Flexible
//! Electronics via Compressed Sensing* reproduction).
//!
//! The paper evaluates robustness by classifying 26 objects from 32x32
//! tactile frames with a ResNet \[28\] trained with Adam, categorical
//! cross-entropy, max pooling, dropout, plateau LR decay and
//! best-validation-weights selection (Sec. 4.2). Rust has no suitable
//! small dependency for this, so the crate implements the full stack:
//!
//! - [`Tensor`]: dense `[C, H, W]` tensors.
//! - [`layers`]: [`Conv2d`], [`Dense`], [`Relu`], [`MaxPool2d`],
//!   [`Dropout`], [`Flatten`], [`GlobalAvgPool`] with hand-derived
//!   backward passes (all finite-difference tested).
//! - [`ResidualBlock`] / [`Sequential`] / [`build_tactile_resnet`].
//! - [`softmax`] / [`cross_entropy_with_logits`].
//! - [`Sgd`] / [`Adam`] / [`ReduceLrOnPlateau`].
//! - [`fit`]: the paper's training recipe; [`evaluate`], [`accuracy`],
//!   [`confusion_matrix`], [`tensor_from_frame`].
//!
//! ## Example
//!
//! ```
//! use flexcs_nn::{build_tactile_resnet, tensor_from_frame, Layer};
//! use flexcs_linalg::Matrix;
//!
//! let mut net = build_tactile_resnet(26, 4, 42);
//! let frame = Matrix::zeros(32, 32);
//! let logits = net.forward(&tensor_from_frame(&frame), false);
//! assert_eq!(logits.shape(), &[26]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod init;
pub mod layers;
mod loss;
mod metrics;
mod norm;
mod optim;
mod resnet;
mod tensor;
mod train;

pub use init::NnRng;
pub use layers::{Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu};
pub use loss::{cross_entropy_with_logits, softmax};
pub use metrics::{accuracy, confusion_matrix, evaluate, tensor_from_frame};
pub use norm::InstanceNorm2d;
pub use optim::{Adam, ReduceLrOnPlateau, Sgd};
pub use resnet::{build_tactile_resnet, ResidualBlock, Sequential};
pub use tensor::Tensor;
pub use train::{fit, FitReport, TrainConfig};
