//! Training loop with minibatches, Adam, plateau LR decay and
//! best-weights selection — the paper's recipe: "trained with error
//! backpropagation using Adam optimizer and categorical cross-entropy…
//! we reduce the learning rate by a factor of 10 until validation loss
//! converges. The weights that achieve the best validation accuracy are
//! selected for the final evaluation."

use crate::init::NnRng;
use crate::layers::Layer;
use crate::loss::cross_entropy_with_logits;
use crate::metrics::evaluate;
use crate::optim::{Adam, ReduceLrOnPlateau};
use crate::resnet::Sequential;
use crate::tensor::Tensor;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size (gradients averaged over the batch).
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub lr: f64,
    /// Plateau patience before a 10x LR reduction.
    pub patience: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Print one line per epoch to stdout.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 3e-3,
            patience: 2,
            seed: 0,
            verbose: false,
        }
    }
}

/// Per-epoch history and the selected best model.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Validation loss per epoch.
    pub val_loss: Vec<f64>,
    /// Validation accuracy per epoch.
    pub val_accuracy: Vec<f64>,
    /// Epoch index with the best validation accuracy.
    pub best_epoch: usize,
    /// That best validation accuracy.
    pub best_val_accuracy: f64,
}

/// Trains `net` on `(tensor, label)` samples; on return the network
/// holds the best-validation-accuracy weights.
///
/// # Panics
///
/// Panics if `train` or `val` is empty, or `batch_size == 0`.
pub fn fit(
    net: &mut Sequential,
    train: &[(Tensor, usize)],
    val: &[(Tensor, usize)],
    config: &TrainConfig,
) -> FitReport {
    assert!(!train.is_empty() && !val.is_empty(), "fit needs data");
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut opt = Adam::new(config.lr);
    let mut sched = ReduceLrOnPlateau::new(config.patience);
    let mut rng = NnRng::new(config.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut report = FitReport {
        train_loss: Vec::new(),
        val_loss: Vec::new(),
        val_accuracy: Vec::new(),
        best_epoch: 0,
        best_val_accuracy: 0.0,
    };
    let mut best_snapshot = net.snapshot();

    for epoch in 0..config.epochs {
        // Shuffle.
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            net.zero_grads();
            let mut batch_loss = 0.0;
            for &idx in batch {
                let (x, label) = &train[idx];
                let logits = net.forward(x, true);
                let (loss, mut grad) = cross_entropy_with_logits(&logits, *label);
                batch_loss += loss;
                // Average gradients over the batch.
                grad.scale(1.0 / batch.len() as f64);
                net.backward(&grad);
            }
            epoch_loss += batch_loss;
            opt.step(net);
        }
        epoch_loss /= train.len() as f64;

        let (vl, va) = evaluate(net, val);
        report.train_loss.push(epoch_loss);
        report.val_loss.push(vl);
        report.val_accuracy.push(va);
        if va > report.best_val_accuracy {
            report.best_val_accuracy = va;
            report.best_epoch = epoch;
            best_snapshot = net.snapshot();
        }
        let reduced = sched.observe(vl, &mut opt.lr);
        if config.verbose {
            println!(
                "epoch {epoch:>3}: train loss {epoch_loss:.4}, val loss {vl:.4}, val acc {:.1}%{}",
                va * 100.0,
                if reduced { " (lr reduced)" } else { "" }
            );
        }
    }
    net.restore(&best_snapshot);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};
    use crate::resnet::Sequential;

    /// Tiny separable 2-class problem: mean of the frame decides.
    fn toy_data(count: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = NnRng::new(seed);
        (0..count)
            .map(|_| {
                let label = (rng.uniform() < 0.5) as usize;
                let base = if label == 1 { 0.8 } else { 0.2 };
                let x = Tensor::from_fn(&[1, 4, 4], |_| base + 0.1 * (rng.uniform() - 0.5));
                (x, label)
            })
            .collect()
    }

    fn toy_net(seed: u64) -> Sequential {
        Sequential::new()
            .push(Flatten::new())
            .push(Dense::new(16, 8, seed))
            .push(Relu::new())
            .push(Dense::new(8, 2, seed ^ 1))
    }

    #[test]
    fn fit_learns_toy_problem() {
        let train = toy_data(60, 1);
        let val = toy_data(20, 2);
        let mut net = toy_net(3);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 8,
            lr: 1e-2,
            ..TrainConfig::default()
        };
        let report = fit(&mut net, &train, &val, &cfg);
        assert!(
            report.best_val_accuracy > 0.9,
            "best accuracy {}",
            report.best_val_accuracy
        );
        assert_eq!(report.train_loss.len(), 20);
        // Training loss trends down.
        assert!(report.train_loss.last().unwrap() < &report.train_loss[0]);
    }

    #[test]
    fn fit_restores_best_weights() {
        let train = toy_data(40, 5);
        let val = toy_data(16, 6);
        let mut net = toy_net(7);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 1e-2,
            ..TrainConfig::default()
        };
        let report = fit(&mut net, &train, &val, &cfg);
        let (_, acc_now) = evaluate(&mut net, &val);
        assert!((acc_now - report.best_val_accuracy).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fit needs data")]
    fn fit_rejects_empty_data() {
        let mut net = toy_net(1);
        fit(&mut net, &[], &[], &TrainConfig::default());
    }

    #[test]
    fn fit_is_deterministic() {
        let train = toy_data(30, 9);
        let val = toy_data(10, 10);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut n1 = toy_net(11);
        let r1 = fit(&mut n1, &train, &val, &cfg);
        let mut n2 = toy_net(11);
        let r2 = fit(&mut n2, &train, &val, &cfg);
        assert_eq!(r1.train_loss, r2.train_loss);
        assert_eq!(n1.snapshot(), n2.snapshot());
    }
}
