//! Evaluation metrics: loss, accuracy and confusion matrices.

use crate::layers::Layer;
use crate::loss::cross_entropy_with_logits;
use crate::resnet::Sequential;
use crate::tensor::Tensor;
use flexcs_linalg::Matrix;

/// Evaluates `(mean loss, accuracy)` of the network on labeled samples
/// (inference mode: dropout disabled).
pub fn evaluate(net: &mut Sequential, data: &[(Tensor, usize)]) -> (f64, f64) {
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let mut loss_sum = 0.0;
    let mut correct = 0usize;
    for (x, label) in data {
        let logits = net.forward(x, false);
        let (loss, _) = cross_entropy_with_logits(&logits, *label);
        loss_sum += loss;
        if logits.argmax() == *label {
            correct += 1;
        }
    }
    (
        loss_sum / data.len() as f64,
        correct as f64 / data.len() as f64,
    )
}

/// Classification accuracy only.
pub fn accuracy(net: &mut Sequential, data: &[(Tensor, usize)]) -> f64 {
    evaluate(net, data).1
}

/// Builds a `classes x classes` confusion matrix with true classes as
/// rows and predictions as columns.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn confusion_matrix(net: &mut Sequential, data: &[(Tensor, usize)], classes: usize) -> Matrix {
    let mut m = Matrix::zeros(classes, classes);
    for (x, label) in data {
        assert!(*label < classes, "label {label} out of range");
        let pred = net.forward(x, false).argmax().min(classes - 1);
        m[(*label, pred)] += 1.0;
    }
    m
}

/// Converts a sensor frame into a `[1, rows, cols]` network input.
pub fn tensor_from_frame(frame: &Matrix) -> Tensor {
    Tensor::from_vec(&[1, frame.rows(), frame.cols()], frame.to_flat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten};
    use crate::resnet::Sequential;

    fn fixed_net() -> Sequential {
        // Deterministic 2-class "net" on 2x1 inputs: class = argmax of
        // the identity-mapped input.
        let mut dense = Dense::new(2, 2, 0);
        dense.visit_params(&mut |w, _| {
            if w.len() == 4 {
                w.copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
            } else {
                w.iter_mut().for_each(|v| *v = 0.0);
            }
        });
        Sequential::new().push(Flatten::new()).push(dense)
    }

    fn sample(a: f64, b: f64, label: usize) -> (Tensor, usize) {
        (Tensor::from_vec(&[1, 2, 1], vec![a, b]), label)
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let mut net = fixed_net();
        let data = vec![
            sample(1.0, 0.0, 0),
            sample(0.0, 1.0, 1),
            sample(1.0, 0.0, 1), // wrong
            sample(0.0, 1.0, 1),
        ];
        assert!((accuracy(&mut net, &data) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn evaluate_on_empty_is_zero() {
        let mut net = fixed_net();
        assert_eq!(evaluate(&mut net, &[]), (0.0, 0.0));
    }

    #[test]
    fn confusion_matrix_layout() {
        let mut net = fixed_net();
        let data = vec![
            sample(1.0, 0.0, 0),
            sample(0.0, 1.0, 0), // true 0 predicted 1
            sample(0.0, 1.0, 1),
        ];
        let m = confusion_matrix(&mut net, &data, 2);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(1, 0)], 0.0);
        assert_eq!(m.sum(), 3.0);
    }

    #[test]
    fn tensor_from_frame_shape() {
        let f = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let t = tensor_from_frame(&f);
        assert_eq!(t.shape(), &[1, 3, 4]);
        assert_eq!(t.at3(0, 2, 3), 11.0);
    }
}
