//! Neural-network layers with explicit forward/backward passes.
//!
//! The paper's tactile case study uses a ResNet-style CNN with max
//! pooling and dropout (Sec. 4.2). Everything here is written for
//! single-sample `[C, H, W]` tensors; the trainer accumulates gradients
//! over a minibatch before each optimizer step.

use crate::init::NnRng;
use crate::tensor::Tensor;

/// A differentiable layer processing one sample at a time.
///
/// `backward` must be called after `forward` (layers cache their inputs)
/// and accumulates parameter gradients internally until
/// [`Layer::zero_grads`].
pub trait Layer {
    /// Forward pass. `train` enables training-only behaviour (dropout).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass: receives `∂L/∂output`, returns `∂L/∂input`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits `(params, grads)` buffers in a stable order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f64], &mut [f64])) {}

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Short layer name for summaries.
    fn name(&self) -> &'static str;
}

/// 2-D convolution, stride 1, "same" zero padding, square kernel.
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    /// `[out_ch, in_ch, k, k]` flattened.
    weight: Vec<f64>,
    bias: Vec<f64>,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    cache_x: Option<Tensor>,
}

impl Conv2d {
    /// Creates a `k x k` same-padded convolution with He-initialized
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or any dimension is zero.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "conv kernel must be odd for same padding");
        assert!(in_ch > 0 && out_ch > 0 && k > 0);
        let mut rng = NnRng::new(seed);
        let fan_in = in_ch * k * k;
        let weight = (0..out_ch * in_ch * k * k)
            .map(|_| rng.he(fan_in))
            .collect();
        Conv2d {
            in_ch,
            out_ch,
            k,
            weight,
            bias: vec![0.0; out_ch],
            grad_w: vec![0.0; out_ch * in_ch * k * k],
            grad_b: vec![0.0; out_ch],
            cache_x: None,
        }
    }

    fn w(&self, o: usize, c: usize, i: usize, j: usize) -> f64 {
        self.weight[((o * self.in_ch + c) * self.k + i) * self.k + j]
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(c_in, self.in_ch, "conv input channel mismatch");
        let p = self.k / 2;
        let mut y = Tensor::zeros(&[self.out_ch, h, w]);
        for o in 0..self.out_ch {
            for i in 0..h {
                for j in 0..w {
                    let mut acc = self.bias[o];
                    for c in 0..self.in_ch {
                        for di in 0..self.k {
                            let ii = i + di;
                            if ii < p || ii - p >= h {
                                continue;
                            }
                            for dj in 0..self.k {
                                let jj = j + dj;
                                if jj < p || jj - p >= w {
                                    continue;
                                }
                                acc += self.w(o, c, di, dj) * x.at3(c, ii - p, jj - p);
                            }
                        }
                    }
                    *y.at3_mut(o, i, j) = acc;
                }
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let p = self.k / 2;
        let mut gx = Tensor::zeros(&[self.in_ch, h, w]);
        for o in 0..self.out_ch {
            for i in 0..h {
                for j in 0..w {
                    let g = grad.at3(o, i, j);
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_b[o] += g;
                    for c in 0..self.in_ch {
                        for di in 0..self.k {
                            let ii = i + di;
                            if ii < p || ii - p >= h {
                                continue;
                            }
                            for dj in 0..self.k {
                                let jj = j + dj;
                                if jj < p || jj - p >= w {
                                    continue;
                                }
                                let widx = ((o * self.in_ch + c) * self.k + di) * self.k + dj;
                                self.grad_w[widx] += g * x.at3(c, ii - p, jj - p);
                                *gx.at3_mut(c, ii - p, jj - p) += g * self.weight[widx];
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.weight, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Fully connected layer on rank-1 tensors.
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weight: Vec<f64>,
    bias: Vec<f64>,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = NnRng::new(seed);
        Dense {
            in_dim,
            out_dim,
            weight: (0..in_dim * out_dim).map(|_| rng.he(in_dim)).collect(),
            bias: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            cache_x: None,
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "dense input size mismatch");
        let xs = x.as_slice();
        let mut y = Tensor::zeros(&[self.out_dim]);
        let ys = y.as_mut_slice();
        for (o, yo) in ys.iter_mut().enumerate() {
            let row = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
            *yo = self.bias[o] + row.iter().zip(xs).map(|(a, b)| a * b).sum::<f64>();
        }
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let xs = x.as_slice();
        let gs = grad.as_slice();
        let mut gx = Tensor::zeros(&[self.in_dim]);
        let gxs = gx.as_mut_slice();
        for (o, &g) in gs.iter().enumerate() {
            self.grad_b[o] += g;
            let row = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.grad_w[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * xs[i];
                gxs[i] += g * row[i];
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.weight, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.mask = x.as_slice().iter().map(|&v| v > 0.0).collect();
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for (v, &m) in g.as_mut_slice().iter_mut().zip(&self.mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// 2x2 max pooling, stride 2 (paper: "Max pooling … for reducing
/// dimensionality").
#[derive(Default)]
pub struct MaxPool2d {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a 2x2/stride-2 pooling layer.
    pub fn new() -> Self {
        MaxPool2d::default()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert!(h % 2 == 0 && w % 2 == 0, "maxpool needs even dimensions");
        let (ho, wo) = (h / 2, w / 2);
        let mut y = Tensor::zeros(&[c, ho, wo]);
        self.argmax = vec![0; c * ho * wo];
        self.in_shape = x.shape().to_vec();
        for ci in 0..c {
            for i in 0..ho {
                for j in 0..wo {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_idx = 0;
                    for di in 0..2 {
                        for dj in 0..2 {
                            let v = x.at3(ci, 2 * i + di, 2 * j + dj);
                            if v > best {
                                best = v;
                                best_idx = (ci * h + 2 * i + di) * w + 2 * j + dj;
                            }
                        }
                    }
                    *y.at3_mut(ci, i, j) = best;
                    self.argmax[(ci * ho + i) * wo + j] = best_idx;
                }
            }
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut gx = Tensor::zeros(&self.in_shape);
        for (k, &src) in self.argmax.iter().enumerate() {
            gx.as_mut_slice()[src] += grad.as_slice()[k];
        }
        gx
    }

    fn name(&self) -> &'static str {
        "maxpool2"
    }
}

/// Inverted dropout (paper: "'Dropout' … for avoiding overfitting").
pub struct Dropout {
    p_drop: f64,
    rng: NnRng,
    mask: Vec<f64>,
}

impl Dropout {
    /// Creates a dropout layer dropping activations with probability
    /// `p_drop`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p_drop < 1`.
    pub fn new(p_drop: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p_drop), "p_drop must be in [0, 1)");
        Dropout {
            p_drop,
            rng: NnRng::new(seed),
            mask: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p_drop == 0.0 {
            self.mask = vec![1.0; x.len()];
            return x.clone();
        }
        let keep = 1.0 - self.p_drop;
        self.mask = (0..x.len())
            .map(|_| {
                if self.rng.uniform() < self.p_drop {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, m) in y.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for (v, m) in g.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        g
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

/// Flattens to rank 1.
#[derive(Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.in_shape = x.shape().to_vec();
        let mut y = x.clone();
        let n = y.len();
        y.reshape(&[n]);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        g.reshape(&self.in_shape);
        g
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

/// Global average pooling over spatial dimensions: `[C, H, W] -> [C]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        self.in_shape = x.shape().to_vec();
        let mut y = Tensor::zeros(&[c]);
        for ci in 0..c {
            let mut acc = 0.0;
            for i in 0..h {
                for j in 0..w {
                    acc += x.at3(ci, i, j);
                }
            }
            y.as_mut_slice()[ci] = acc / (h * w) as f64;
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        let scale = 1.0 / (h * w) as f64;
        let mut gx = Tensor::zeros(&self.in_shape);
        for ci in 0..c {
            let g = grad.as_slice()[ci] * scale;
            for i in 0..h {
                for j in 0..w {
                    *gx.at3_mut(ci, i, j) = g;
                }
            }
        }
        gx
    }

    fn name(&self) -> &'static str {
        "gap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut dyn Layer, x: &Tensor, tol: f64) {
        // Loss = sum(forward(x)); compare analytic dL/dx against finite
        // differences.
        let y = layer.forward(x, false);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let gx = layer.backward(&ones);
        let h = 1e-6;
        for i in 0..x.len().min(20) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let fp: f64 = layer.forward(&xp, false).as_slice().iter().sum();
            let fm: f64 = layer.forward(&xm, false).as_slice().iter().sum();
            let num = (fp - fm) / (2.0 * h);
            let ana = gx.as_slice()[i];
            assert!(
                (num - ana).abs() < tol,
                "{} grad[{i}]: analytic {ana} vs numeric {num}",
                layer.name()
            );
        }
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.visit_params(&mut |w, _| {
            if w.len() == 9 {
                w.copy_from_slice(&[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
            } else {
                w[0] = 0.0;
            }
        });
        let x = Tensor::from_fn(&[1, 4, 4], |i| i as f64);
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_gradients_match_finite_difference() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        let x = Tensor::from_fn(&[2, 5, 5], |i| ((i * 31 % 17) as f64 - 8.0) * 0.1);
        finite_diff_check(&mut conv, &x, 1e-5);
    }

    #[test]
    fn conv_weight_gradients_match_finite_difference() {
        let mut conv = Conv2d::new(1, 2, 3, 9);
        let x = Tensor::from_fn(&[1, 4, 4], |i| (i as f64 * 0.37).sin());
        let y = conv.forward(&x, false);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        conv.zero_grads();
        conv.forward(&x, false);
        conv.backward(&ones);
        // Collect analytic gradients and compare a few entries.
        let mut grads = Vec::new();
        conv.visit_params(&mut |_, g| grads.push(g.to_vec()));
        let h = 1e-6;
        for pi in 0..6 {
            let mut plus = 0.0;
            let mut minus = 0.0;
            for (dir, out) in [(h, &mut plus), (-h, &mut minus)] {
                let mut k = 0;
                conv.visit_params(&mut |w, _| {
                    if k == 0 {
                        w[pi] += dir;
                    }
                    k += 1;
                });
                *out = conv.forward(&x, false).as_slice().iter().sum();
                let mut k = 0;
                conv.visit_params(&mut |w, _| {
                    if k == 0 {
                        w[pi] -= dir;
                    }
                    k += 1;
                });
            }
            let num = (plus - minus) / (2.0 * h);
            assert!(
                (num - grads[0][pi]).abs() < 1e-5,
                "weight grad[{pi}]: {} vs {num}",
                grads[0][pi]
            );
        }
    }

    #[test]
    fn dense_gradients_match_finite_difference() {
        let mut dense = Dense::new(6, 4, 5);
        let x = Tensor::from_fn(&[6], |i| (i as f64) * 0.3 - 1.0);
        finite_diff_check(&mut dense, &x, 1e-6);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -0.5, 0.5]);
        let y = relu.forward(&x, false);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 0.5]);
        let g = relu.backward(&Tensor::from_vec(&[4], vec![1.0; 4]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_and_routes() {
        let mut pool = MaxPool2d::new();
        let x = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 6.0]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[5.0, 6.0]);
        let g = pool.backward(&Tensor::from_vec(&[1, 1, 2], vec![10.0, 20.0]));
        assert_eq!(g.as_slice(), &[0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 20.0]);
    }

    #[test]
    fn dropout_scales_kept_units_and_is_identity_in_eval() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(&[1000], vec![1.0; 1000]);
        let y = d.forward(&x, true);
        let kept = y.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!((kept as f64 - 500.0).abs() < 80.0, "kept {kept}");
        // Kept units are scaled to preserve the expectation.
        let mean: f64 = y.as_slice().iter().sum::<f64>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
        let y_eval = d.forward(&x, false);
        assert_eq!(y_eval.as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4], |i| i as f64);
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[24]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4]);
    }

    #[test]
    fn gap_averages_and_distributes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(&[2, 1, 2], vec![1.0, 3.0, 5.0, 7.0]);
        let y = gap.forward(&x, false);
        assert_eq!(y.as_slice(), &[2.0, 6.0]);
        let g = gap.backward(&Tensor::from_vec(&[2], vec![2.0, 4.0]));
        assert_eq!(g.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }
}
