//! Minimal dense tensor for the from-scratch CNN.
//!
//! Row-major `f64` storage with shapes up to rank 3 in practice
//! (`[channels, height, width]` for feature maps, `[n]` for logits).
//! The network is small enough that clarity beats BLAS here.

use std::fmt;

/// A dense row-major tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&d| d > 0),
            "tensor shape must be non-empty and positive, got {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's volume.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        let volume: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            volume,
            "tensor data length {} does not match shape {shape:?}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor by evaluating `f(flat_index)`.
    pub fn from_fn(shape: &[usize], f: impl FnMut(usize) -> f64) -> Self {
        let volume: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..volume).map(f).collect(),
        }
    }

    /// Shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty (cannot occur by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes into the flat data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes in place (volume must match).
    ///
    /// # Panics
    ///
    /// Panics on a volume mismatch.
    pub fn reshape(&mut self, shape: &[usize]) {
        let volume: usize = shape.iter().product();
        assert_eq!(volume, self.data.len(), "reshape volume mismatch");
        self.shape = shape.to_vec();
    }

    /// 3-D access `(c, h, w)` for `[C, H, W]` tensors.
    ///
    /// # Panics
    ///
    /// Panics for non-rank-3 tensors or out-of-range indices.
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f64 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// Mutable 3-D access; see [`Tensor::at3`].
    pub fn at3_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f64 {
        debug_assert_eq!(self.shape.len(), 3);
        &mut self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Adds another tensor in place.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "tensor add: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Index of the maximum entry (first on ties). Returns 0 for an
    /// all-NaN tensor.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} values)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn zero_dim_rejected() {
        Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn from_vec_checks_volume() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.as_slice()[3], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn at3_layout_is_chw() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f64);
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 0), 4.0);
        assert_eq!(t.at3(1, 0, 0), 12.0);
        assert_eq!(t.at3(1, 2, 3), 23.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_fn(&[2, 6], |i| i as f64);
        t.reshape(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.as_slice()[5], 5.0);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[2.0, -1.0, 4.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.0, -0.5, 2.0]);
        assert_eq!(a.argmax(), 2);
        let m = a.map(|v| v * v);
        assert_eq!(m.as_slice(), &[1.0, 0.25, 4.0]);
    }
}
