//! Residual blocks and the small ResNet used for tactile recognition.
//!
//! The paper classifies 32x32 tactile frames into 26 object classes with
//! a ResNet [28] using max pooling and dropout. This module provides the
//! same architecture family at a scale a CPU reproduces in minutes.

use crate::layers::{Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu};
use crate::tensor::Tensor;

/// A pre-activation-free residual block:
/// `y = relu(x + conv2(relu(conv1(x))))` with channel-preserving 3x3
/// convolutions.
pub struct ResidualBlock {
    conv1: Conv2d,
    relu1: Relu,
    conv2: Conv2d,
    relu_out: Relu,
}

impl ResidualBlock {
    /// Creates a block with `channels` in/out channels.
    pub fn new(channels: usize, seed: u64) -> Self {
        ResidualBlock {
            conv1: Conv2d::new(channels, channels, 3, seed),
            relu1: Relu::new(),
            conv2: Conv2d::new(channels, channels, 3, seed ^ 0xabcd),
            relu_out: Relu::new(),
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.conv1.forward(x, train);
        let h = self.relu1.forward(&h, train);
        let mut h = self.conv2.forward(&h, train);
        h.add_assign(x); // skip connection
        self.relu_out.forward(&h, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.relu_out.backward(grad);
        // Branch: through conv2 → relu1 → conv1; skip: identity.
        let g_branch = self.conv2.backward(&g);
        let g_branch = self.relu1.backward(&g_branch);
        let mut gx = self.conv1.backward(&g_branch);
        gx.add_assign(&g); // skip path gradient
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
    }

    fn zero_grads(&mut self) {
        self.conv1.zero_grads();
        self.conv2.zero_grads();
    }

    fn name(&self) -> &'static str {
        "resblock"
    }
}

/// A simple sequential network of boxed layers.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |w, _| n += w.len());
        n
    }

    /// Copies all parameters into a flat snapshot (for best-weights
    /// selection).
    pub fn snapshot(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        self.visit_params(&mut |w, _| out.extend_from_slice(w));
        out
    }

    /// Restores parameters from a snapshot created by
    /// [`Sequential::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match.
    pub fn restore(&mut self, snapshot: &[f64]) {
        let mut offset = 0;
        self.visit_params(&mut |w, _| {
            w.copy_from_slice(&snapshot[offset..offset + w.len()]);
            offset += w.len();
        });
        assert_eq!(offset, snapshot.len(), "snapshot length mismatch");
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// Builds the tactile-recognition ResNet: stem conv → residual block →
/// max-pool → residual block → max-pool → dropout → global average pool
/// → dense classifier.
///
/// `width` is the channel count (8 reproduces the paper's trends in
/// minutes on a CPU).
pub fn build_tactile_resnet(classes: usize, width: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(1, width, 3, seed))
        .push(Relu::new())
        .push(ResidualBlock::new(width, seed ^ 0x11))
        .push(MaxPool2d::new())
        .push(ResidualBlock::new(width, seed ^ 0x22))
        .push(MaxPool2d::new())
        .push(Dropout::new(0.3, seed ^ 0x33))
        .push(GlobalAvgPool::new())
        .push(Flatten::new())
        .push(Dense::new(width, classes, seed ^ 0x44))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_block_preserves_shape() {
        let mut block = ResidualBlock::new(4, 1);
        let x = Tensor::from_fn(&[4, 8, 8], |i| (i as f64 * 0.01).sin());
        let y = block.forward(&x, false);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn residual_block_gradient_matches_finite_difference() {
        let mut block = ResidualBlock::new(2, 3);
        let x = Tensor::from_fn(&[2, 4, 4], |i| ((i * 13 % 7) as f64 - 3.0) * 0.2);
        let y = block.forward(&x, false);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let gx = block.backward(&ones);
        let h = 1e-6;
        for i in [0usize, 5, 11, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let fp: f64 = block.forward(&xp, false).as_slice().iter().sum();
            let fm: f64 = block.forward(&xm, false).as_slice().iter().sum();
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - gx.as_slice()[i]).abs() < 1e-4,
                "grad[{i}]: {} vs {num}",
                gx.as_slice()[i]
            );
        }
    }

    #[test]
    fn sequential_composes() {
        let mut net = Sequential::new()
            .push(Conv2d::new(1, 2, 3, 5))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Dense::new(2 * 4 * 4, 3, 6));
        let x = Tensor::from_fn(&[1, 4, 4], |i| i as f64 * 0.1);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[3]);
        assert!(net.parameter_count() > 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut net = build_tactile_resnet(5, 4, 7);
        let snap = net.snapshot();
        let x = Tensor::from_fn(&[1, 8, 8], |i| (i as f64 * 0.03).cos());
        let y0 = net.forward(&x, false);
        // Perturb, then restore.
        net.visit_params(&mut |w, _| {
            for v in w.iter_mut() {
                *v += 0.1;
            }
        });
        let y1 = net.forward(&x, false);
        assert_ne!(y0.as_slice(), y1.as_slice());
        net.restore(&snap);
        let y2 = net.forward(&x, false);
        for (a, b) in y0.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn tactile_resnet_output_dimension() {
        let mut net = build_tactile_resnet(26, 4, 1);
        let x = Tensor::from_fn(&[1, 32, 32], |i| (i % 11) as f64 * 0.05);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[26]);
    }
}
