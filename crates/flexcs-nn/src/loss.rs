//! Softmax cross-entropy loss (the paper trains with "categorical
//! cross-entropy as the loss function").

use crate::tensor::Tensor;

/// Numerically stable softmax of a rank-1 tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits
        .as_slice()
        .iter()
        .fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f64> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    Tensor::from_vec(logits.shape(), exps.into_iter().map(|e| e / sum).collect())
}

/// Softmax cross-entropy: returns `(loss, dL/dlogits)` for an integer
/// target class.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy_with_logits(logits: &Tensor, target: usize) -> (f64, Tensor) {
    assert!(target < logits.len(), "target {target} out of range");
    let probs = softmax(logits);
    let p_t = probs.as_slice()[target].max(1e-300);
    let loss = -p_t.ln();
    let mut grad = probs;
    grad.as_mut_slice()[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let l = Tensor::from_vec(&[3], vec![1.0, 2.0, 0.5]);
        let p = softmax(&l);
        let sum: f64 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.as_slice()[1] > p.as_slice()[0]);
        assert!(p.as_slice()[0] > p.as_slice()[2]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let b = softmax(&Tensor::from_vec(&[2], vec![1001.0, 1002.0]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn loss_decreases_with_confidence() {
        let bad = cross_entropy_with_logits(&Tensor::from_vec(&[3], vec![0.0, 0.0, 0.0]), 1).0;
        let good = cross_entropy_with_logits(&Tensor::from_vec(&[3], vec![0.0, 5.0, 0.0]), 1).0;
        assert!(good < bad);
        assert!((bad - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let l = Tensor::from_vec(&[4], vec![0.3, -0.7, 1.2, 0.1]);
        let (_, grad) = cross_entropy_with_logits(&l, 2);
        let h = 1e-7;
        for i in 0..4 {
            let mut lp = l.clone();
            lp.as_mut_slice()[i] += h;
            let mut lm = l.clone();
            lm.as_mut_slice()[i] -= h;
            let fp = cross_entropy_with_logits(&lp, 2).0;
            let fm = cross_entropy_with_logits(&lm, 2).0;
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - grad.as_slice()[i]).abs() < 1e-6,
                "grad[{i}]: {} vs {num}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let l = Tensor::from_vec(&[5], vec![1.0, 2.0, 3.0, -1.0, 0.0]);
        let (_, grad) = cross_entropy_with_logits(&l, 0);
        let sum: f64 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-12);
    }
}
