//! Deterministic weight initialization.

/// SplitMix64-based RNG for reproducible parameter initialization and
/// dropout masks.
#[derive(Debug, Clone)]
pub struct NnRng(u64);

impl NnRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        NnRng(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard-normal draw.
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// He (Kaiming) initialization: `N(0, √(2/fan_in))`.
    pub fn he(&mut self, fan_in: usize) -> f64 {
        self.gaussian() * (2.0 / fan_in as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = NnRng::new(1);
        let mut b = NnRng::new(1);
        for _ in 0..5 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn he_variance_scales_with_fan_in() {
        let mut rng = NnRng::new(3);
        let n = 20_000;
        let fan_in = 50;
        let var: f64 = (0..n).map(|_| rng.he(fan_in).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 2.0 / fan_in as f64).abs() < 0.005, "var {var}");
    }
}
