//! Property-based tests for the neural-network substrate: gradient
//! correctness on randomized configurations and training invariants.

use flexcs_nn::{
    cross_entropy_with_logits, softmax, Conv2d, Dense, GlobalAvgPool, Layer, MaxPool2d, Relu,
    Tensor,
};
use proptest::prelude::*;

/// Checks `∂(Σ output)/∂input` by central finite differences on a few
/// coordinates.
fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor, probes: &[usize], tol: f64) {
    let y = layer.forward(x, false);
    let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
    let gx = layer.backward(&ones);
    let h = 1e-6;
    for &i in probes {
        let i = i % x.len();
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += h;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= h;
        let fp: f64 = layer.forward(&xp, false).as_slice().iter().sum();
        let fm: f64 = layer.forward(&xm, false).as_slice().iter().sum();
        let num = (fp - fm) / (2.0 * h);
        assert!(
            (num - gx.as_slice()[i]).abs() < tol,
            "{} grad[{i}]: analytic {} vs numeric {num}",
            layer.name(),
            gx.as_slice()[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_gradients_correct_for_random_shapes(
        in_ch in 1usize..3,
        out_ch in 1usize..4,
        hw in 3usize..7,
        seed in 0u64..1000,
    ) {
        let mut conv = Conv2d::new(in_ch, out_ch, 3, seed);
        let x = Tensor::from_fn(&[in_ch, hw, hw], |i| ((i as f64) * 0.7).sin());
        check_input_gradient(&mut conv, &x, &[0, 3, 7, 11], 1e-5);
    }

    #[test]
    fn dense_gradients_correct_for_random_shapes(
        din in 1usize..12,
        dout in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut dense = Dense::new(din, dout, seed);
        let x = Tensor::from_fn(&[din], |i| (i as f64) * 0.4 - 1.0);
        check_input_gradient(&mut dense, &x, &[0, 1, 2, 5], 1e-6);
    }

    #[test]
    fn relu_idempotent_and_nonnegative(values in proptest::collection::vec(-5.0..5.0f64, 16)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[16], values);
        let y = relu.forward(&x, false);
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let yy = relu.forward(&y, false);
        prop_assert_eq!(yy.as_slice(), y.as_slice());
    }

    #[test]
    fn maxpool_output_dominates_inputs(values in proptest::collection::vec(-5.0..5.0f64, 2 * 4 * 4)) {
        let mut pool = MaxPool2d::new();
        let x = Tensor::from_vec(&[2, 4, 4], values);
        let y = pool.forward(&x, false);
        // Every output equals the max of its window: y >= all window
        // members, and is one of them.
        for c in 0..2 {
            for i in 0..2 {
                for j in 0..2 {
                    let out = y.at3(c, i, j);
                    let mut found = false;
                    for di in 0..2 {
                        for dj in 0..2 {
                            let v = x.at3(c, 2 * i + di, 2 * j + dj);
                            prop_assert!(out >= v);
                            if out == v {
                                found = true;
                            }
                        }
                    }
                    prop_assert!(found);
                }
            }
        }
    }

    #[test]
    fn gap_equals_mean(values in proptest::collection::vec(-5.0..5.0f64, 3 * 4 * 4)) {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(&[3, 4, 4], values.clone());
        let y = gap.forward(&x, false);
        for c in 0..3 {
            let mean: f64 = values[c * 16..(c + 1) * 16].iter().sum::<f64>() / 16.0;
            prop_assert!((y.as_slice()[c] - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_is_a_distribution(values in proptest::collection::vec(-20.0..20.0f64, 1..16)) {
        let n = values.len();
        let p = softmax(&Tensor::from_vec(&[n], values));
        let sum: f64 = p.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-10);
        prop_assert!(p.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cross_entropy_nonnegative_and_consistent(
        values in proptest::collection::vec(-10.0..10.0f64, 2..10),
        target_raw in 0usize..10,
    ) {
        let n = values.len();
        let target = target_raw % n;
        let logits = Tensor::from_vec(&[n], values);
        let (loss, grad) = cross_entropy_with_logits(&logits, target);
        prop_assert!(loss >= -1e-12);
        // Gradient components sum to zero and target component is
        // negative (probability < 1 pushes the target logit up).
        let gsum: f64 = grad.as_slice().iter().sum();
        prop_assert!(gsum.abs() < 1e-10);
        prop_assert!(grad.as_slice()[target] <= 0.0);
    }
}
