//! In-tree offline substitute for the `rand 0.8` API surface the flexcs
//! workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free replacement instead of
//! the real crate. It implements exactly the calls the workspace makes —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over `Range<f64>`, `Range<usize>` and
//! `RangeInclusive<usize>` — nothing more.
//!
//! The generator core is splitmix64: 64 bits of state, full-period,
//! passes the workspace's statistical smoke tests (Gaussian moments,
//! uniformity bounds). Streams are deterministic per seed, which is the
//! property every flexcs experiment relies on, but they are *not*
//! bit-compatible with upstream `rand`'s ChaCha-based `StdRng`; all
//! in-repo assertions are count- or threshold-based, so only per-seed
//! determinism matters.

/// Standard RNG types.
pub mod rngs {
    /// A seeded pseudo-random generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Low-level 64-bit generation.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // XOR with an arbitrary odd constant so seed 0 does not start
        // the splitmix64 walk at the all-zero state.
        rngs::StdRng {
            state: seed ^ 0x6a09_e667_f3bc_c908,
        }
    }
}

/// Ranges a generator can sample from (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<G: RngCore>(self, g: &mut G) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<G: RngCore>(g: &mut G) -> f64 {
    (g.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * unit_f64(g)
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample_from<G: RngCore>(self, g: &mut G) -> usize {
        assert!(self.start < self.end, "gen_range: empty usize range");
        let span = (self.end - self.start) as u64;
        self.start + (g.next_u64() % span) as usize
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_from<G: RngCore>(self, g: &mut G) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let span = (hi - lo) as u64 + 1;
        lo + (g.next_u64() % span) as usize
    }
}

/// High-level draws, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5..17usize);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(0..=9usize);
            assert!(i <= 9);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
