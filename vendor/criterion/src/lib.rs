//! In-tree offline substitute for the `criterion 0.5` API surface the
//! flexcs benches use.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free replacement. It keeps
//! the calls the benches make — `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `BenchmarkId::{new, from_parameter}`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros — and replaces the statistical machinery with a wall-clock
//! mean over an adaptively sized batch, reported as one plain-text
//! line per benchmark. Numbers are indicative, not statistically
//! rigorous; the repo's recorded baselines (`BENCH_decode.json`) come
//! from the dedicated `decode_baseline` binary instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark measurement loop.
pub struct Bencher {
    /// Requested sample count (minimum timed iterations).
    samples: usize,
    /// Mean wall-clock nanoseconds per iteration, set by [`iter`].
    ///
    /// [`iter`]: Bencher::iter
    mean_ns: f64,
}

/// Keep each benchmark's timed phase around this long.
const TARGET_TIME: Duration = Duration::from_millis(200);

/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    /// Times `f`, storing the mean per-iteration wall-clock cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up call.
        std::hint::black_box(f());
        let start = Instant::now();
        let mut done = 0u64;
        while done < self.samples as u64 || (start.elapsed() < TARGET_TIME && done < MAX_ITERS) {
            std::hint::black_box(f());
            done += 1;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / done as f64;
    }
}

/// Pretty-prints nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut b);
    println!("{name:<50} time: [{}]", fmt_ns(b.mean_ns));
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id for `function_name` at parameter `parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLES, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Runs a named benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, |b| f(b));
        self
    }

    /// Runs a parameterised benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut ran = 0u64;
        run_one("smoke/busy_loop", 3, |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_ids_compose_labels() {
        assert_eq!(BenchmarkId::new("fast", 64).label, "fast/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }

    #[test]
    fn unit_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(1.2e10).ends_with(" s"));
    }
}
