//! In-tree offline substitute for the `proptest 1.x` API surface the
//! flexcs workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free replacement. It keeps
//! the parts the in-repo property tests rely on — the `proptest!` macro
//! with `#![proptest_config(ProptestConfig::with_cases(n))]`, range and
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*`
//! macros — and drops everything else (notably shrinking: a failing
//! case panics with the assertion message directly; the generator is
//! deterministic per test name and case index, so failures reproduce
//! exactly on re-run).

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case generator (splitmix64 seeded from the
    /// test name and case index) — failures reproduce bit-exactly.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one `(property, case)` pair.
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform u64 in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below: empty range");
            self.next_u64() % n
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Something that can generate values of an associated type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking —
    /// `generate` yields the final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream `prop_map`).
        fn prop_map<F, U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty u64 range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize range strategy");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;

        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty i32 range strategy");
            self.start + rng.below((self.end - self.start) as u64) as i32
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifier for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import: strategies, config, and the macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` looping over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        __case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    // Upstream proptest runs the body in a closure
                    // returning Result, so `return Ok(())` skips a
                    // case early; mirror that.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(__message) = __outcome {
                        panic!("proptest case failed: {__message}");
                    }
                }
            }
        )*
    };
}

/// Property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..3.0f64, n in 1usize..10, s in 0u64..100) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(s < 100);
        }

        #[test]
        fn vec_lengths_match(v in crate::collection::vec(0.0..1.0f64, 7), w in crate::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!((2..5).contains(&w.len()));
        }

        #[test]
        fn prop_map_applies(doubled in (1usize..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
