//! Quickstart: the paper's headline experiment in ~30 lines.
//!
//! Generates a thermal frame, injects 10 % sparse errors, reconstructs
//! from a 50 % compressed-sensing scan, and compares RMSE with and
//! without CS — the reduction the paper reports as 0.20 → 0.05.
//!
//! Run with: `cargo run --release --example quickstart`

use flexcs::core::{run_experiment, ExperimentConfig, SamplingStrategy};
use flexcs::datasets::{thermal_frame, ThermalConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 2020;
    println!("flexcs quickstart — DAC 2020 robust flexible sensing (seed {seed})\n");

    // A 32x32 thermal-hand frame, as in the paper's temperature study.
    let frame = thermal_frame(&ThermalConfig::default(), seed);
    println!(
        "scene: 32x32 thermal hand, {:.1}–{:.1} °C",
        frame.min(),
        frame.max()
    );

    let config = ExperimentConfig {
        sampling_fraction: 0.5,
        error_fraction: 0.10,
        strategy: SamplingStrategy::exclude_tested(),
        seed,
        ..ExperimentConfig::default()
    };
    let outcome = run_experiment(&frame, &config)?;

    println!(
        "sparse errors injected : {} pixels (10 %)",
        outcome.corrupted_count
    );
    println!("samples taken          : 512 of 1024 (50 %)");
    println!();
    println!(
        "RMSE without CS (raw corrupted frame) : {:.4}",
        outcome.rmse_raw
    );
    println!(
        "RMSE with CS reconstruction           : {:.4}",
        outcome.rmse_cs
    );
    println!(
        "improvement                            : {:.1}x",
        outcome.rmse_raw / outcome.rmse_cs
    );

    assert!(outcome.rmse_cs < outcome.rmse_raw);
    println!("\nCS reconstruction beats the raw readout, as in the paper.");
    Ok(())
}
