//! Defect mapping without explicit testing (paper Sec. 4.3 extended).
//!
//! When an array cannot be tested offline, defects must be inferred from
//! the data itself. This example runs the RPCA machinery over a short
//! frame sequence to (a) map *static* stuck pixels by a persistence
//! vote, (b) locate a *transient* upset in time, and then (c) feed the
//! inferred defect map into the CS pipeline — closing the loop from
//! blind acquisition to robust reconstruction.
//!
//! Run with: `cargo run --release --example defect_mapping`

use flexcs::core::{
    persistent_outliers, rmse, rpca_multiframe, transient_outliers, Decoder, RpcaConfig,
    SamplingStrategy, SparseErrorModel,
};
use flexcs::datasets::{normalize_unit, thermal_sequence, ThermalConfig};
use flexcs::linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 77;
    let cfg = ThermalConfig {
        rows: 16,
        cols: 16,
        ..ThermalConfig::default()
    };
    // A temporally coherent sequence (drifting hand) from the same
    // defective array.
    let clean: Vec<Matrix> = thermal_sequence(&cfg, 6, seed)
        .iter()
        .map(normalize_unit)
        .collect();

    // The array has 6 % static stuck pixels; frame 3 also suffers a
    // burst of transient upsets.
    let static_model = SparseErrorModel::new(0.06)?;
    let (_, static_defects) = static_model.corrupt(&clean[0], seed);
    let transient_model = SparseErrorModel::new(0.02)?;
    let mut observed = Vec::new();
    for (t, frame) in clean.iter().enumerate() {
        let mut f = frame.clone();
        for &i in &static_defects {
            f[(i / 16, i % 16)] = if i % 2 == 0 { 1.0 } else { 0.0 };
        }
        if t == 3 {
            let (burst, _) = transient_model.corrupt(&f, seed + 99);
            f = burst;
        }
        observed.push(f);
    }
    println!(
        "array: 16x16, {} static stuck pixels + transient burst in frame 3\n",
        static_defects.len()
    );

    // (a) Static defect map by per-frame RPCA persistence vote.
    let flagged = persistent_outliers(&observed, &RpcaConfig::default(), 0.12, 0.8)?;
    let mut true_set = static_defects.clone();
    true_set.sort_unstable();
    let found = flagged.iter().filter(|i| true_set.contains(i)).count();
    let false_alarms = flagged.len() - found;
    println!(
        "static map: {found}/{} true defects found, {false_alarms} false alarms",
        true_set.len()
    );
    println!("(stuck-at-0 pixels inside cold background read plausible values and are");
    println!(" fundamentally undetectable from data — and also nearly harmless)");

    // (b) Drift exposes hidden defects: a stuck-at-0 pixel under cold
    // background reads plausibly — until the warm hand drifts over it.
    // Accumulating per-frame RPCA outliers over the sequence therefore
    // grows defect coverage frame by frame.
    let mut seen: Vec<usize> = Vec::new();
    let mut coverage = Vec::with_capacity(observed.len());
    for frame in &observed {
        let dec = flexcs::core::rpca(frame, &RpcaConfig::default())?;
        for p in flexcs::core::outlier_indices(&dec, 0.12) {
            if true_set.contains(&p) && !seen.contains(&p) {
                seen.push(p);
            }
        }
        coverage.push(seen.len());
    }
    println!(
        "cumulative true defects exposed as the scene drifts: {coverage:?} of {}",
        true_set.len()
    );
    // The stacked-frame temporal decomposition is also available when
    // the time axis itself is of interest (transient upsets):
    let dec = rpca_multiframe(&observed, &RpcaConfig::default())?;
    let _ = transient_outliers(&dec, 0.45);

    // (c) Robust reconstruction of the burst frame using the inferred
    // static map (defects excluded before sampling).
    let decoder = Decoder::default();
    let m = 150;
    let rec_mapped = SamplingStrategy::ExcludeKnown {
        indices: flagged.clone(),
    }
    .reconstruct(&observed[3], m, &decoder, seed)?;
    let rec_blind = SamplingStrategy::Oblivious.reconstruct(&observed[3], m, &decoder, seed)?;
    println!(
        "\nframe 3 reconstruction RMSE: blind {:.4} -> with inferred map {:.4}",
        rmse(&rec_blind, &clean[3]),
        rmse(&rec_mapped, &clean[3])
    );
    println!(
        "raw corrupted frame RMSE:    {:.4}",
        rmse(&observed[3], &clean[3])
    );
    Ok(())
}
