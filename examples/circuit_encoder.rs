//! The flexible CS encoder at the transistor level (paper Sec. 3,
//! Fig. 5).
//!
//! Exercises every fabricated building block in simulation: the Pt
//! temperature pixel (linearity), the pseudo-CMOS cell library, a
//! 2-stage shift register shifting a pulse at 10 kHz, the self-biased
//! amplifier's gain at 30 kHz, and finally a hardware-in-the-loop CS
//! acquisition through the active-matrix model.
//!
//! Run with: `cargo run --release --example circuit_encoder`

use flexcs::circuit::{
    build_self_biased_amplifier, build_shift_register, linearity_fit, pixel_temperature_sweep,
    ActiveMatrix, ActiveMatrixConfig, AmplifierConfig, CellLibrary, Circuit, NodeId, PixelBias,
    PtSensorModel, TransientConfig, Waveform,
};
use flexcs::core::{CircuitEncoder, Decoder, SamplingPlan};
use flexcs::datasets::{normalize_unit, thermal_frame, ThermalConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("flexcs circuit encoder walkthrough (all CNT-TFT, pseudo-CMOS)\n");

    // --- Fig. 5b: temperature pixel linearity --------------------------
    let sweep = pixel_temperature_sweep(
        &PtSensorModel::default(),
        &PixelBias::default(),
        20.0,
        100.0,
        9,
    )?;
    let (slope, _, r2) = linearity_fit(&sweep);
    println!("pixel: I(T) sweep 20–100 °C");
    for (t, i) in &sweep {
        println!("  T = {t:>5.1} °C  ->  I = {:>8.3} µA", i * 1e6);
    }
    println!(
        "  linear fit: slope {:.3} nA/°C, r² = {r2:.5}\n",
        slope * 1e9
    );

    // --- Fig. 5c/d: shift register at 10 kHz ---------------------------
    let mut ckt = Circuit::new();
    let lib = CellLibrary::with_rails(&mut ckt, 3.0, -3.0);
    let data = ckt.node("data");
    let clk = ckt.node("clk");
    let t_clk = 1e-4; // 10 kHz
    ckt.add_vsource(clk, NodeId::GROUND, Waveform::clock(0.0, 3.0, 10e3));
    ckt.add_vsource(
        data,
        NodeId::GROUND,
        Waveform::Pulse {
            v0: 3.0,
            v1: 0.0,
            delay: t_clk * 0.9,
            rise: 2e-6,
            fall: 2e-6,
            width: 1.0,
            period: 0.0,
        },
    );
    let sr = build_shift_register(&mut ckt, &lib, 2, data, clk)?;
    println!(
        "shift register: 2 stages, {} TFTs, CLK 10 kHz, VDD 3 V",
        sr.tft_count
    );
    let result = ckt.transient(&TransientConfig::new(3.0 * t_clk, 2e-6))?;
    for (k, &q) in sr.outputs.iter().enumerate() {
        let tr = result.trace(q);
        println!(
            "  stage {}: q @ 0.9T = {:+.2} V, @ 1.9T = {:+.2} V, @ 2.9T = {:+.2} V",
            k + 1,
            tr.value_at(0.9 * t_clk).unwrap(),
            tr.value_at(1.9 * t_clk).unwrap(),
            tr.value_at(2.9 * t_clk).unwrap(),
        );
    }
    println!("  (the logic 1 marches one stage per rising edge)\n");

    // --- Fig. 5e: self-biased amplifier --------------------------------
    let mut amp_ckt = Circuit::new();
    let amp_lib = CellLibrary::with_rails(&mut amp_ckt, 3.0, -3.0);
    let amp =
        build_self_biased_amplifier(&mut amp_ckt, &amp_lib, "vin", &AmplifierConfig::default())?;
    let vin = amp_ckt.find_node("vin")?;
    let src = amp_ckt.add_vsource(vin, NodeId::GROUND, Waveform::Dc(0.0));
    let sweep = amp_ckt.ac_sweep(src, &[3e3, 10e3, 30e3, 100e3, 300e3])?;
    println!("self-biased amplifier ({} TFTs):", amp.tft_count);
    for (f, g) in sweep.freqs().iter().zip(sweep.gain_db(amp.output)) {
        println!("  {:>7.0} Hz: {:>6.1} dB", f, g);
    }
    println!("  (paper reports 28 dB at 30 kHz)\n");

    // --- Fig. 4: hardware-in-the-loop CS acquisition -------------------
    let scene = normalize_unit(&thermal_frame(
        &ThermalConfig {
            rows: 16,
            cols: 16,
            ..ThermalConfig::default()
        },
        3,
    ));
    let array_config = ActiveMatrixConfig {
        rows: 16,
        cols: 16,
        ..ActiveMatrixConfig::default()
    };
    let mut encoder = CircuitEncoder::new(ActiveMatrix::new(array_config)?);
    encoder.array_mut().inject_defects(0.05, 99);
    let defect_count = encoder.array().defective_indices().len();

    let excluded = encoder.array().defective_indices();
    let plan = SamplingPlan::random_subset(256, 140, &excluded, 17)?;
    let acq = encoder.acquire(&scene, &plan, 21)?;
    let rec = Decoder::default().reconstruct(16, 16, &acq.selected, &acq.measurements)?;
    let rmse = flexcs::core::rmse(&rec.frame, &scene);
    println!("active matrix: 16x16, {defect_count} injected defects (excluded by test)");
    println!(
        "  scan: {} cycles, {} measurements (55 %)",
        acq.scan_cycles,
        acq.measurements.len()
    );
    println!("  reconstruction RMSE vs scene: {rmse:.4}");
    Ok(())
}
