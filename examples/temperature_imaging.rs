//! Temperature-imaging case study (paper Sec. 4.2, Fig. 6a in
//! miniature).
//!
//! Sweeps the sparse-error rate at several sampling percentages and
//! prints the RMSE with and without compressed sensing, plus an ASCII
//! rendering of a reconstructed frame.
//!
//! Run with: `cargo run --release --example temperature_imaging`

use flexcs::core::{run_experiment, run_experiment_batch, ExperimentConfig};
use flexcs::datasets::{thermal_frames, ThermalConfig};
use flexcs::linalg::Matrix;

/// Renders a [0, 1] frame as ASCII shades.
fn ascii_frame(frame: &Matrix) -> String {
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for i in 0..frame.rows() {
        for j in 0..frame.cols() {
            let v = frame[(i, j)].clamp(0.0, 1.0);
            let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx]);
            out.push(ramp[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    let frames = thermal_frames(&ThermalConfig::default(), 4, seed);
    println!("temperature imaging: 4 thermal-hand frames, 32x32\n");

    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "sampling", "errors", "rmse w/ cs", "rmse w/o cs"
    );
    for &sampling in &[0.45, 0.50, 0.55, 0.60] {
        for &errors in &[0.0, 0.05, 0.10, 0.20] {
            let config = ExperimentConfig {
                sampling_fraction: sampling,
                error_fraction: errors,
                seed,
                ..ExperimentConfig::default()
            };
            let (cs, raw) = run_experiment_batch(&frames, &config)?;
            println!(
                "{:>9.0}% {:>9.0}% {:>12.4} {:>12.4}",
                sampling * 100.0,
                errors * 100.0,
                cs,
                raw
            );
        }
    }

    // Show one reconstruction side by side.
    let config = ExperimentConfig {
        sampling_fraction: 0.55,
        error_fraction: 0.10,
        seed,
        ..ExperimentConfig::default()
    };
    let outcome = run_experiment(&frames[0], &config)?;
    println!("\nground truth:");
    println!("{}", ascii_frame(&outcome.truth));
    println!("corrupted acquisition (10 % stuck pixels):");
    println!("{}", ascii_frame(&outcome.corrupted));
    println!("CS reconstruction (55 % sampling):");
    println!("{}", ascii_frame(&outcome.reconstructed));
    println!(
        "rmse: corrupted {:.4} -> reconstructed {:.4}",
        outcome.rmse_raw, outcome.rmse_cs
    );
    Ok(())
}
