//! Tactile object recognition (paper Sec. 4.2, Fig. 6b in miniature).
//!
//! Trains a small ResNet on synthetic 26-class tactile frames, then
//! evaluates test accuracy on (a) clean frames, (b) frames with 10 %
//! stuck pixels, and (c) CS reconstructions of the corrupted frames —
//! reproducing the paper's accuracy-boost effect.
//!
//! Run with: `cargo run --release --example tactile_recognition`
//! (training takes a couple of minutes).

use flexcs::core::{Decoder, SamplingStrategy, SparseErrorModel};
use flexcs::datasets::{tactile_dataset, Dataset, TactileConfig, TACTILE_CLASS_COUNT};
use flexcs::linalg::Matrix;
use flexcs::nn::{accuracy, build_tactile_resnet, fit, tensor_from_frame, Tensor, TrainConfig};

fn to_samples(ds: &Dataset) -> Vec<(Tensor, usize)> {
    ds.iter()
        .map(|(frame, label)| (tensor_from_frame(frame), label))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 13;
    // 20 grasps per object is enough for a clear demonstration.
    let (frames, labels) = tactile_dataset(&TactileConfig::default(), 20, seed);
    let dataset = Dataset::new(frames, labels)?;
    let (train_set, test_set) = dataset.split(0.75, seed)?;
    println!(
        "tactile recognition: {} classes, {} train / {} test frames",
        TACTILE_CLASS_COUNT,
        train_set.len(),
        test_set.len()
    );

    let mut net = build_tactile_resnet(TACTILE_CLASS_COUNT, 8, seed);
    let config = TrainConfig {
        epochs: 10,
        batch_size: 16,
        lr: 3e-3,
        verbose: true,
        seed,
        ..TrainConfig::default()
    };
    println!("\ntraining ResNet (Adam, cross-entropy, plateau LR decay)...");
    let report = fit(
        &mut net,
        &to_samples(&train_set),
        &to_samples(&test_set),
        &config,
    );
    println!(
        "best validation accuracy: {:.1}% (epoch {})",
        report.best_val_accuracy * 100.0,
        report.best_epoch
    );

    // Corrupt the test frames with 10 % sparse errors, keeping the
    // injected defect maps (the paper's flow identifies defects by
    // offline testing before sampling).
    let error_model = SparseErrorModel::new(0.10)?;
    let corrupted_with_defects: Vec<(Matrix, Vec<usize>)> = test_set
        .frames()
        .iter()
        .enumerate()
        .map(|(k, f)| error_model.corrupt(f, seed + k as u64))
        .collect();
    let corrupted: Vec<Matrix> = corrupted_with_defects
        .iter()
        .map(|(f, _)| f.clone())
        .collect();

    // CS-reconstruct each corrupted frame (55 % sampling, tested
    // defects excluded).
    let decoder = Decoder::default();
    let m = (32 * 32) * 55 / 100;
    let reconstructed: Vec<Matrix> = corrupted_with_defects
        .iter()
        .enumerate()
        .map(|(k, (f, defects))| {
            SamplingStrategy::ExcludeKnown {
                indices: defects.clone(),
            }
            .reconstruct(f, m, &decoder, seed + 31 * k as u64)
        })
        .collect::<Result<_, _>>()?;

    let labeled = |frames: &[Matrix]| -> Vec<(Tensor, usize)> {
        frames
            .iter()
            .zip(test_set.labels())
            .map(|(f, &l)| (tensor_from_frame(f), l))
            .collect()
    };
    let acc_clean = accuracy(&mut net, &labeled(test_set.frames()));
    let acc_raw = accuracy(&mut net, &labeled(&corrupted));
    let acc_cs = accuracy(&mut net, &labeled(&reconstructed));

    println!(
        "\naccuracy on clean test frames         : {:.1}%",
        acc_clean * 100.0
    );
    println!(
        "accuracy with 10% stuck pixels (raw)  : {:.1}%",
        acc_raw * 100.0
    );
    println!(
        "accuracy after CS reconstruction      : {:.1}%",
        acc_cs * 100.0
    );
    println!(
        "\nCS recovers {:.1} points of the {:.1}-point corruption loss.",
        (acc_cs - acc_raw) * 100.0,
        (acc_clean - acc_raw) * 100.0
    );
    Ok(())
}
