//! # flexcs
//!
//! Umbrella crate for the flexcs stack — a Rust reproduction of
//! *"Robust Design of Large Area Flexible Electronics via Compressed
//! Sensing"* (Shao, Lei, Huang, Bao, Cheng — DAC 2020).
//!
//! Large-area flexible sensor arrays (temperature, tactile, ultrasound)
//! suffer sparse errors — stuck pixels from fabrication defects and
//! transient upsets. The paper's insight: body-sensing signals are ~50 %
//! sparse in the DCT domain, so a *trivially simple* flexible-electronics
//! encoder (random pixel scan) plus a *powerful* silicon decoder
//! (L1 recovery) tolerates those errors at the system level.
//!
//! Each subsystem lives in its own crate, re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `flexcs-linalg` | dense matrices, LU/QR/Cholesky/SVD/eigen, complex solves |
//! | [`transform`] | `flexcs-transform` | 1-D/2-D DCT, Haar DWT, Ψ basis, sparsity statistics |
//! | [`solver`] | `flexcs-solver` | OMP, CoSaMP, SP, ISTA/FISTA, ADMM, IRLS, interior-point LP |
//! | [`circuit`] | `flexcs-circuit` | CNT-TFT model, MNA simulator, pseudo-CMOS cells, shift register, amplifier, active matrix |
//! | [`datasets`] | `flexcs-datasets` | synthetic thermal / tactile / ultrasound generators |
//! | [`nn`] | `flexcs-nn` | from-scratch ResNet, Adam, training loop |
//! | [`core`] | `flexcs-core` | sampling Φ, error injection, decoder, RPCA, strategies, Fig. 7 pipeline |
//! | [`serve`] | `flexcs-serve` | multi-tenant batched decode engine: sessions, work-stealing scheduler, backpressure, latency metrics |
//!
//! ## Quickstart
//!
//! ```
//! use flexcs::core::{run_experiment, ExperimentConfig};
//! use flexcs::datasets::{thermal_frame, ThermalConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let frame = thermal_frame(
//!     &ThermalConfig { rows: 16, cols: 16, ..ThermalConfig::default() },
//!     42,
//! );
//! let outcome = run_experiment(&frame, &ExperimentConfig::default())?;
//! println!(
//!     "RMSE with CS: {:.3} — without: {:.3}",
//!     outcome.rmse_cs, outcome.rmse_raw
//! );
//! assert!(outcome.rmse_cs < outcome.rmse_raw);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flexcs_circuit as circuit;
pub use flexcs_core as core;
pub use flexcs_datasets as datasets;
pub use flexcs_linalg as linalg;
pub use flexcs_nn as nn;
pub use flexcs_serve as serve;
pub use flexcs_solver as solver;
pub use flexcs_transform as transform;
