//! `flexcs` command-line interface.
//!
//! A thin front end over the library for quick exploration without
//! writing Rust:
//!
//! ```text
//! flexcs experiment [--sampling 0.5] [--errors 0.1] [--size 32]
//!                   [--strategy exclude|oblivious|median|rpca]
//!                   [--noise 0.0] [--seed 2020]
//! flexcs sparsity   [--signal temperature|pressure|ultrasound] [--seed 2020]
//! flexcs pixel      [--tmin 20] [--tmax 100] [--points 9]
//! flexcs comm       [--size 32] [--seed 2020]
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! binary dependency-free.

use flexcs::circuit::{linearity_fit, pixel_temperature_sweep, PixelBias, PtSensorModel};
use flexcs::core::{comm_cost_for_sparsity, run_experiment, ExperimentConfig, SamplingStrategy};
use flexcs::datasets::{
    tactile_frame, thermal_frame, ultrasound_frame, TactileConfig, ThermalConfig, UltrasoundConfig,
};
use flexcs::transform::{sparsity, Dct2d};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{key}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for --{name}")),
    }
}

fn cmd_experiment(flags: &HashMap<String, String>) -> Result<(), String> {
    let sampling: f64 = get(flags, "sampling", 0.5)?;
    let errors: f64 = get(flags, "errors", 0.1)?;
    let size: usize = get(flags, "size", 32)?;
    let seed: u64 = get(flags, "seed", 2020)?;
    let noise: f64 = get(flags, "noise", 0.0)?;
    let strategy = match flags
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("exclude")
    {
        "exclude" => SamplingStrategy::exclude_tested(),
        "oblivious" => SamplingStrategy::Oblivious,
        "median" => SamplingStrategy::ResampleMedian { rounds: 10 },
        "rpca" => SamplingStrategy::RpcaFilter { threshold: 0.3 },
        other => return Err(format!("unknown strategy `{other}`")),
    };
    let frame = thermal_frame(
        &ThermalConfig {
            rows: size,
            cols: size,
            ..ThermalConfig::default()
        },
        seed,
    );
    let config = ExperimentConfig {
        sampling_fraction: sampling,
        error_fraction: errors,
        strategy,
        measurement_noise: noise,
        seed,
        ..ExperimentConfig::default()
    };
    let outcome = run_experiment(&frame, &config).map_err(|e| e.to_string())?;
    println!(
        "thermal {size}x{size}, sampling {:.0}%, errors {:.0}%, noise {noise}, seed {seed}",
        sampling * 100.0,
        errors * 100.0
    );
    println!("  corrupted pixels : {}", outcome.corrupted_count);
    println!("  rmse w/o cs      : {:.4}", outcome.rmse_raw);
    println!("  rmse w/ cs       : {:.4}", outcome.rmse_cs);
    Ok(())
}

fn cmd_sparsity(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = get(flags, "seed", 2020)?;
    let signal = flags
        .get("signal")
        .map(String::as_str)
        .unwrap_or("temperature");
    let frame = match signal {
        "temperature" => thermal_frame(
            &ThermalConfig {
                noise_std: 0.005,
                ..ThermalConfig::default()
            },
            seed,
        ),
        "pressure" => tactile_frame(
            &TactileConfig {
                rows: 41,
                cols: 41,
                noise_std: 2e-4,
                ..TactileConfig::default()
            },
            (seed % 26) as usize,
            seed,
        ),
        "ultrasound" => ultrasound_frame(
            &UltrasoundConfig {
                noise_std: 2e-4,
                ..UltrasoundConfig::default()
            },
            seed,
        ),
        other => return Err(format!("unknown signal `{other}`")),
    };
    let (rows, cols) = frame.shape();
    let coeffs = Dct2d::new(rows, cols)
        .and_then(|p| p.forward(&frame))
        .map_err(|e| e.to_string())?;
    let report = sparsity::analyze(&coeffs);
    println!("{signal} frame {rows}x{cols}, seed {seed}");
    println!(
        "  significant coefficients : {} of {} ({:.1}%)",
        report.significant,
        report.n,
        report.fraction * 100.0
    );
    println!(
        "  Eq.1 measurements M      : {} (M/N = {:.2})",
        report.required_measurements, report.measurement_rate
    );
    Ok(())
}

fn cmd_pixel(flags: &HashMap<String, String>) -> Result<(), String> {
    let tmin: f64 = get(flags, "tmin", 20.0)?;
    let tmax: f64 = get(flags, "tmax", 100.0)?;
    let points: usize = get(flags, "points", 9)?;
    let sweep = pixel_temperature_sweep(
        &PtSensorModel::default(),
        &PixelBias::default(),
        tmin,
        tmax,
        points,
    )
    .map_err(|e| e.to_string())?;
    println!("Pt pixel sweep (VWL = 1 V, VBL = 0 V):");
    for (t, i) in &sweep {
        println!("  {t:>6.1} degC -> {:>8.4} uA", i * 1e6);
    }
    let (slope, _, r2) = linearity_fit(&sweep);
    println!("  fit: {:.2} nA/degC, r^2 = {r2:.5}", slope * 1e9);
    Ok(())
}

fn cmd_comm(flags: &HashMap<String, String>) -> Result<(), String> {
    let size: usize = get(flags, "size", 32)?;
    let seed: u64 = get(flags, "seed", 2020)?;
    let frame = thermal_frame(
        &ThermalConfig {
            rows: size,
            cols: size,
            noise_std: 0.005,
            ..ThermalConfig::default()
        },
        seed,
    );
    let coeffs = Dct2d::new(size, size)
        .and_then(|p| p.forward(&frame))
        .map_err(|e| e.to_string())?;
    let report = sparsity::analyze(&coeffs);
    let cost = comm_cost_for_sparsity(size, size, report.significant);
    println!("{size}x{size} thermal frame, seed {seed}");
    println!(
        "  K = {} -> M = {} (cost ratio {:.2}), {} scan cycles",
        report.significant, cost.m, cost.cost_ratio, cost.scan_cycles
    );
    Ok(())
}

fn usage() -> &'static str {
    "usage: flexcs <command> [--flag value]...\n\
     commands:\n\
       experiment  run the Fig. 7 robustness experiment on a thermal frame\n\
                   [--sampling 0.5] [--errors 0.1] [--size 32] [--noise 0.0]\n\
                   [--strategy exclude|oblivious|median|rpca] [--seed 2020]\n\
       sparsity    Fig. 2 DCT sparsity statistics\n\
                   [--signal temperature|pressure|ultrasound] [--seed 2020]\n\
       pixel       Fig. 5b temperature-pixel sweep\n\
                   [--tmin 20] [--tmax 100] [--points 9]\n\
       comm        Sec. 4.1 communication cost at measured sparsity\n\
                   [--size 32] [--seed 2020]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = parse_flags(rest).and_then(|flags| match command.as_str() {
        "experiment" => cmd_experiment(&flags),
        "sparsity" => cmd_sparsity(&flags),
        "pixel" => cmd_pixel(&flags),
        "comm" => cmd_comm(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
